package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/provlight/provlight/internal/chaos"
	"github.com/provlight/provlight/internal/dfanalyzer"
	"github.com/provlight/provlight/internal/source"
	"github.com/provlight/provlight/internal/wal"
)

func testSpec(tag string) *dfanalyzer.Dataflow {
	return &dfanalyzer.Dataflow{
		Tag: tag,
		Transformations: []dfanalyzer.Transformation{{
			Tag: "train",
			Input: []dfanalyzer.SetSchema{{Tag: "train_input", Attributes: []dfanalyzer.Attribute{
				{Name: "lr", Type: dfanalyzer.Numeric},
			}}},
			Output: []dfanalyzer.SetSchema{{Tag: "train_output", Attributes: []dfanalyzer.Attribute{
				{Name: "accuracy", Type: dfanalyzer.Numeric}, {Name: "model", Type: dfanalyzer.Text},
			}}},
		}},
	}
}

// frameBatch builds one identified frame carrying a begin+end task pair.
func frameBatch(dataflow, origin string, i int) []dfanalyzer.FrameMsg {
	start := time.Unix(int64(1700000000+i), 0).UTC()
	end := start.Add(time.Second)
	return []dfanalyzer.FrameMsg{{
		Origin: origin,
		Seq:    uint64(i + 1),
		Tasks: []*dfanalyzer.TaskMsg{
			{
				Dataflow: dataflow, Transformation: "train", ID: fmt.Sprintf("t%d", i),
				Status: dfanalyzer.StatusRunning, StartTime: &start,
				Sets: []dfanalyzer.SetData{{Tag: "train_input", Elements: []dfanalyzer.Element{{float64(i) / 100}}}},
			},
			{
				Dataflow: dataflow, Transformation: "train", ID: fmt.Sprintf("t%d", i),
				Status: dfanalyzer.StatusFinished, EndTime: &end,
				Sets: []dfanalyzer.SetData{{Tag: "train_output", Elements: []dfanalyzer.Element{{float64(i), fmt.Sprintf("m%d", i)}}}},
			},
		},
	}}
}

func openStore(t testing.TB, dir string, segment int64) *dfanalyzer.Store {
	t.Helper()
	s, err := dfanalyzer.OpenStore(dfanalyzer.StoreOptions{
		Dir: dir, Sync: wal.SyncOff, SnapshotEvery: -1, SegmentSize: segment,
	})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	return s
}

func startPrimary(t testing.TB, store *dfanalyzer.Store, opts Options) *Server {
	t.Helper()
	srv, err := NewServer(store, opts)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func startFollower(t testing.TB, store *dfanalyzer.Store, opts FollowerOptions) *Follower {
	t.Helper()
	if opts.ReconnectMin == 0 {
		opts.ReconnectMin = 10 * time.Millisecond
	}
	if opts.AckInterval == 0 {
		opts.AckInterval = 10 * time.Millisecond
	}
	f, err := StartFollower(store, opts)
	if err != nil {
		t.Fatalf("StartFollower: %v", err)
	}
	t.Cleanup(f.Stop)
	return f
}

func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func ingestN(t testing.TB, s *dfanalyzer.Store, origin string, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		if _, err := s.IngestFrames(frameBatch("df", origin, i)); err != nil {
			t.Fatalf("ingest frame %d: %v", i, err)
		}
	}
}

// cannedQueries is the suite replicas must answer byte-identically to
// the primary.
func cannedQueries() []source.Query {
	return []source.Query{
		{Dataflow: "df", Set: "train_input"},
		{Dataflow: "df", Set: "train_output", Where: []source.Pred{{Attr: "accuracy", Op: source.Gt, Value: 5.0}}},
		{Dataflow: "df", Set: "train_output", OrderBy: "accuracy", Desc: true, Limit: 3},
		{Dataflow: "df", Set: "train_output", Project: []string{"model"}, OrderBy: "model"},
	}
}

// assertSameReads fails unless replica answers the canned query suite,
// the task catalog, and the workflow listing byte-identically to primary.
func assertSameReads(t testing.TB, primary, replica source.Source) {
	t.Helper()
	ctx := context.Background()
	for i, q := range cannedQueries() {
		a, err := primary.Select(ctx, q)
		if err != nil {
			t.Fatalf("primary query %d: %v", i, err)
		}
		b, err := replica.Select(ctx, q)
		if err != nil {
			t.Fatalf("replica query %d: %v", i, err)
		}
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if string(aj) != string(bj) {
			t.Fatalf("query %d diverges:\nprimary: %s\nreplica: %s", i, aj, bj)
		}
	}
	aw, _ := primary.Workflows(ctx)
	bw, _ := replica.Workflows(ctx)
	if fmt.Sprint(aw) != fmt.Sprint(bw) {
		t.Fatalf("workflows diverge: %v vs %v", aw, bw)
	}
	at, err := primary.Tasks(ctx, "df")
	if err != nil {
		t.Fatal(err)
	}
	bt, err := replica.Tasks(ctx, "df")
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(at)
	bj, _ := json.Marshal(bt)
	if string(aj) != string(bj) {
		t.Fatalf("task catalogs diverge:\nprimary: %s\nreplica: %s", aj, bj)
	}
}

func caughtUp(p *dfanalyzer.Store, f *Follower) func() bool {
	return func() bool {
		_, last := p.WALSeqs()
		return f.AppliedSeq() == last
	}
}

// TestReplicationCatchUpAndLiveTail replicates sealed-segment history to
// a late-joining follower, then the live tail, and checks the replica
// answers reads identically to the primary.
func TestReplicationCatchUpAndLiveTail(t *testing.T) {
	primary := openStore(t, t.TempDir(), 512) // small segments: history seals
	defer primary.Close()
	if err := primary.RegisterDataflow(testSpec("df")); err != nil {
		t.Fatal(err)
	}
	ingestN(t, primary, "dev-1", 0, 10)
	srv := startPrimary(t, primary, Options{HeartbeatInterval: 20 * time.Millisecond})

	replica := openStore(t, t.TempDir(), 512)
	defer replica.Close()
	f := startFollower(t, replica, FollowerOptions{Primary: srv.Addr(), ID: "r1"})

	waitFor(t, "catch-up", caughtUp(primary, f))
	assertSameReads(t, primary, replica)
	if replica.Role() != dfanalyzer.RoleReplica {
		t.Fatalf("replica role = %v", replica.Role())
	}
	if replica.CurrentTerm() != primary.CurrentTerm() {
		t.Fatalf("terms diverge: %d vs %d", replica.CurrentTerm(), primary.CurrentTerm())
	}

	// Live tail: new writes stream without reconnect.
	ingestN(t, primary, "dev-1", 10, 10)
	waitFor(t, "live tail", caughtUp(primary, f))
	assertSameReads(t, primary, replica)

	// Writes to the replica are fenced off.
	if _, err := replica.IngestFrames(frameBatch("df", "dev-1", 99)); !errors.Is(err, dfanalyzer.ErrNotPrimary) {
		t.Fatalf("replica accepted a write: %v", err)
	}
}

// TestFollowerResumesAfterPartition partitions the replication link mid
// stream, keeps writing, heals, and expects the follower to resume from
// its durable offset without loss.
func TestFollowerResumesAfterPartition(t *testing.T) {
	primary := openStore(t, t.TempDir(), 0)
	defer primary.Close()
	if err := primary.RegisterDataflow(testSpec("df")); err != nil {
		t.Fatal(err)
	}
	srv := startPrimary(t, primary, Options{HeartbeatInterval: 20 * time.Millisecond})

	fault := chaos.NewFault(1)
	replica := openStore(t, t.TempDir(), 0)
	defer replica.Close()
	f := startFollower(t, replica, FollowerOptions{
		Primary: srv.Addr(), ID: "r1", Dial: fault.Dialer(nil),
	})
	ingestN(t, primary, "dev-1", 0, 5)
	waitFor(t, "initial catch-up", caughtUp(primary, f))

	fault.Partition()
	ingestN(t, primary, "dev-1", 5, 10)
	if f.AppliedSeq() == func() uint64 { _, l := primary.WALSeqs(); return l }() {
		t.Fatal("follower caught up through a partition")
	}
	fault.Heal()
	waitFor(t, "resume after heal", caughtUp(primary, f))
	assertSameReads(t, primary, replica)
}

// TestSnapshotCatchUp connects a fresh follower after the primary
// truncated its WAL behind a snapshot: catch-up must go through the
// snapshot transfer, and the stream must continue past it.
func TestSnapshotCatchUp(t *testing.T) {
	primary := openStore(t, t.TempDir(), 256) // rotate often so truncation bites
	defer primary.Close()
	if err := primary.RegisterDataflow(testSpec("df")); err != nil {
		t.Fatal(err)
	}
	ingestN(t, primary, "dev-1", 0, 20)
	if err := primary.Snapshot(); err != nil {
		t.Fatal(err)
	}
	ingestN(t, primary, "dev-1", 20, 5)
	first, _ := primary.WALSeqs()
	if first <= 1 {
		t.Fatalf("WAL not truncated (first=%d); snapshot path not exercised", first)
	}
	srv := startPrimary(t, primary, Options{HeartbeatInterval: 20 * time.Millisecond})

	replica := openStore(t, t.TempDir(), 256)
	defer replica.Close()
	f := startFollower(t, replica, FollowerOptions{Primary: srv.Addr(), ID: "r1"})
	waitFor(t, "snapshot catch-up", caughtUp(primary, f))
	assertSameReads(t, primary, replica)

	// And the live stream continues past the snapshot point.
	ingestN(t, primary, "dev-1", 25, 5)
	waitFor(t, "tail after snapshot", caughtUp(primary, f))
	assertSameReads(t, primary, replica)
}

// TestSemiSyncWaitCommitted verifies MinSync gating: no follower means
// writes never commit; a follower releases the wait.
func TestSemiSyncWaitCommitted(t *testing.T) {
	primary := openStore(t, t.TempDir(), 0)
	defer primary.Close()
	if err := primary.RegisterDataflow(testSpec("df")); err != nil {
		t.Fatal(err)
	}
	srv := startPrimary(t, primary, Options{MinSync: 1, HeartbeatInterval: 20 * time.Millisecond})
	ingestN(t, primary, "dev-1", 0, 3)
	_, last := primary.WALSeqs()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.WaitCommitted(ctx, last); err == nil {
		t.Fatal("WaitCommitted succeeded with no follower")
	}

	replica := openStore(t, t.TempDir(), 0)
	defer replica.Close()
	startFollower(t, replica, FollowerOptions{Primary: srv.Addr(), ID: "r1"})
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.WaitCommitted(ctx2, last); err != nil {
		t.Fatalf("WaitCommitted with follower: %v", err)
	}
	if gate := srv.CommitGate(5 * time.Second); gate() != nil {
		t.Fatal("CommitGate failed after catch-up")
	}
}

// TestFencedFailover promotes a follower and verifies the term fences
// every side: stale-term writes rejected on both stores, the deposed
// primary's rejoin refused as diverged, and an in-sync follower resuming
// under the new primary.
func TestFencedFailover(t *testing.T) {
	primary := openStore(t, t.TempDir(), 0)
	defer primary.Close()
	if err := primary.RegisterDataflow(testSpec("df")); err != nil {
		t.Fatal(err)
	}
	srv := startPrimary(t, primary, Options{HeartbeatInterval: 20 * time.Millisecond})
	oldTerm := primary.CurrentTerm()

	replica := openStore(t, t.TempDir(), 0)
	defer replica.Close()
	f := startFollower(t, replica, FollowerOptions{Primary: srv.Addr(), ID: "r1"})
	ingestN(t, primary, "dev-1", 0, 10)
	waitFor(t, "catch-up", caughtUp(primary, f))

	// Partition-equivalent: stop replication, then write unreplicated
	// records into the soon-to-be-deposed primary.
	f.Stop()
	ingestN(t, primary, "dev-1", 10, 3)

	newTerm, err := replica.Promote()
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if newTerm != oldTerm+1 {
		t.Fatalf("promoted term = %d, want %d", newTerm, oldTerm+1)
	}
	if replica.Role() != dfanalyzer.RolePrimary {
		t.Fatalf("promoted role = %v", replica.Role())
	}

	// Writers that learned the new term are accepted by the new primary
	// and rejected by the deposed one.
	if _, err := replica.IngestFramesTerm(newTerm, frameBatch("df", "dev-2", 1)); err != nil {
		t.Fatalf("new primary rejected current-term write: %v", err)
	}
	if _, err := primary.IngestFramesTerm(newTerm, frameBatch("df", "dev-2", 2)); !errors.Is(err, dfanalyzer.ErrStaleTerm) {
		t.Fatalf("deposed primary accepted new-term write: %v", err)
	}
	// And a zombie writer still on the old term is rejected by the new
	// primary.
	if _, err := replica.IngestFramesTerm(oldTerm, frameBatch("df", "dev-2", 3)); !errors.Is(err, dfanalyzer.ErrStaleTerm) {
		t.Fatalf("new primary accepted stale-term write: %v", err)
	}

	// The deposed primary tries to rejoin as a follower of the new
	// primary: its unreplicated tail extends past the promotion point, so
	// the handshake must reject it as diverged.
	newSrv := startPrimary(t, replica, Options{HeartbeatInterval: 20 * time.Millisecond})
	srv.Close()
	rejoined, err := StartFollower(primary, FollowerOptions{
		Primary: newSrv.Addr(), ID: "deposed",
		ReconnectMin: 10 * time.Millisecond, AckInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rejoined.Stop()
	waitFor(t, "divergence rejection", func() bool { return rejoined.Err() != nil })
	if !errors.Is(rejoined.Err(), nil) && rejoined.AppliedSeq() != func() uint64 { _, l := primary.WALSeqs(); return l }() {
		t.Fatalf("deposed primary state changed during rejected rejoin")
	}
}

// TestDivergedRejoinAtTermBoundary: the deposed primary writes exactly
// ONE unreplicated record before the failover, so its last applied seq
// lands exactly on the new primary's TermStartSeq (the term record
// occupies the same slot its divergent record does). The handshake must
// still refuse it — a > instead of >= here silently resumes the stream
// past the conflicting record, leaving the rejoined node with an extra
// row and the old term.
func TestDivergedRejoinAtTermBoundary(t *testing.T) {
	primary := openStore(t, t.TempDir(), 0)
	defer primary.Close()
	if err := primary.RegisterDataflow(testSpec("df")); err != nil {
		t.Fatal(err)
	}
	srv := startPrimary(t, primary, Options{HeartbeatInterval: 20 * time.Millisecond})

	replica := openStore(t, t.TempDir(), 0)
	defer replica.Close()
	f := startFollower(t, replica, FollowerOptions{Primary: srv.Addr(), ID: "r1"})
	ingestN(t, primary, "dev-1", 0, 10)
	waitFor(t, "catch-up", caughtUp(primary, f))

	// Exactly one unreplicated record: the deposed primary's tail ends at
	// the seq the promotion's term record will claim.
	f.Stop()
	ingestN(t, primary, "dev-1", 10, 1)

	if _, err := replica.Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if got, want := primary.AppliedSeq(), replica.TermStartSeq(); got != want {
		t.Fatalf("test setup drifted: deposed applied %d, term start %d — the boundary case needs them equal", got, want)
	}

	newSrv := startPrimary(t, replica, Options{HeartbeatInterval: 20 * time.Millisecond})
	srv.Close()
	rejoined, err := StartFollower(primary, FollowerOptions{
		Primary: newSrv.Addr(), ID: "deposed",
		ReconnectMin: 10 * time.Millisecond, AckInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rejoined.Stop()
	waitFor(t, "boundary divergence rejection", func() bool { return rejoined.Err() != nil })
	if !errors.Is(rejoined.Err(), ErrDiverged) {
		t.Fatalf("rejoin error = %v, want ErrDiverged", rejoined.Err())
	}
}

// TestLaggedFollowerResumesAcrossPromotion: a follower that stopped in
// sync (its log a prefix of the promotion point) must resume cleanly
// under the new primary and learn the new term through the stream.
func TestLaggedFollowerResumesAcrossPromotion(t *testing.T) {
	primary := openStore(t, t.TempDir(), 0)
	defer primary.Close()
	if err := primary.RegisterDataflow(testSpec("df")); err != nil {
		t.Fatal(err)
	}
	srv := startPrimary(t, primary, Options{HeartbeatInterval: 20 * time.Millisecond})

	r1 := openStore(t, t.TempDir(), 0)
	defer r1.Close()
	r2 := openStore(t, t.TempDir(), 0)
	defer r2.Close()
	f1 := startFollower(t, r1, FollowerOptions{Primary: srv.Addr(), ID: "r1"})
	f2 := startFollower(t, r2, FollowerOptions{Primary: srv.Addr(), ID: "r2"})
	ingestN(t, primary, "dev-1", 0, 8)
	waitFor(t, "both caught up", func() bool { return caughtUp(primary, f1)() && caughtUp(primary, f2)() })

	// r2 stops first; r1 keeps replicating a little longer, making r1 the
	// most-caught-up candidate.
	f2.Stop()
	ingestN(t, primary, "dev-1", 8, 4)
	waitFor(t, "r1 ahead", caughtUp(primary, f1))
	if f1.AppliedSeq() <= f2.AppliedSeq() {
		t.Fatalf("expected r1 (%d) ahead of r2 (%d)", f1.AppliedSeq(), f2.AppliedSeq())
	}

	// Promotion picks the most-caught-up follower: r1.
	srv.Close()
	newTerm, err := f1.Promote()
	if err != nil {
		t.Fatal(err)
	}
	newSrv := startPrimary(t, r1, Options{HeartbeatInterval: 20 * time.Millisecond})

	// r2, whose log is a strict prefix of the new lineage, re-points at
	// the promoted primary and resumes — no snapshot, no divergence.
	f2b := startFollower(t, r2, FollowerOptions{Primary: newSrv.Addr(), ID: "r2"})
	waitFor(t, "r2 resumes under new primary", caughtUp(r1, f2b))
	if f2b.Err() != nil {
		t.Fatalf("in-sync follower rejected: %v", f2b.Err())
	}
	if r2.CurrentTerm() != newTerm {
		t.Fatalf("r2 term = %d, want %d (term record not replicated)", r2.CurrentTerm(), newTerm)
	}
	assertSameReads(t, r1, r2)
}

// TestReplicationStats checks both halves of the stats surface.
func TestReplicationStats(t *testing.T) {
	primary := openStore(t, t.TempDir(), 0)
	defer primary.Close()
	if err := primary.RegisterDataflow(testSpec("df")); err != nil {
		t.Fatal(err)
	}
	srv := startPrimary(t, primary, Options{MinSync: 1, HeartbeatInterval: 20 * time.Millisecond})
	replica := openStore(t, t.TempDir(), 0)
	defer replica.Close()
	f := startFollower(t, replica, FollowerOptions{Primary: srv.Addr(), ID: "r1"})
	ingestN(t, primary, "dev-1", 0, 5)
	waitFor(t, "catch-up", caughtUp(primary, f))
	_, last := primary.WALSeqs()
	waitFor(t, "acks drain", func() bool {
		st := srv.Stats()
		return len(st.Followers) == 1 && st.Followers[0].AckedSeq == last
	})

	st := srv.Stats()
	if st.MinSync != 1 || st.Followers[0].ID != "r1" {
		t.Fatalf("unexpected primary stats: %+v", st)
	}
	if st.Followers[0].LagRecords != 0 || st.Followers[0].LagBytes != 0 {
		t.Fatalf("caught-up follower shows lag: %+v", st.Followers[0])
	}

	rs := f.Stats()
	if !rs.Connected || rs.AppliedSeq != last || rs.LagRecords != 0 {
		t.Fatalf("unexpected replica stats: %+v", rs)
	}
	if rs.StalenessMillis < 0 || rs.StalenessMillis > 5000 {
		t.Fatalf("implausible staleness: %d ms", rs.StalenessMillis)
	}

	ss := primary.Stats()
	if ss.Role != "primary" || ss.Term == 0 || ss.WALLastSeq != last {
		t.Fatalf("unexpected store stats: %+v", ss)
	}
}

// TestRoutingSource verifies staleness-bounded read fan-out with primary
// fallback.
func TestRoutingSource(t *testing.T) {
	primary := openStore(t, t.TempDir(), 0)
	defer primary.Close()
	if err := primary.RegisterDataflow(testSpec("df")); err != nil {
		t.Fatal(err)
	}
	ingestN(t, primary, "dev-1", 0, 5)
	srv := startPrimary(t, primary, Options{HeartbeatInterval: 20 * time.Millisecond})
	replica := openStore(t, t.TempDir(), 0)
	defer replica.Close()
	f := startFollower(t, replica, FollowerOptions{Primary: srv.Addr(), ID: "r1"})
	waitFor(t, "catch-up", caughtUp(primary, f))

	rs := NewRoutingSource(primary, RoutingOptions{MaxStaleness: 5 * time.Second})
	rs.AddReplica(replica, f.Health)
	for i := 0; i < 4; i++ {
		if _, err := rs.Select(context.Background(), cannedQueries()[0]); err != nil {
			t.Fatal(err)
		}
	}
	if got := rs.Stats(); got.ReplicaReads != 4 || got.PrimaryReads != 0 {
		t.Fatalf("healthy replica not preferred: %+v", got)
	}

	// An unhealthy replica (simulated via an always-stale health probe)
	// falls back to the primary.
	rs2 := NewRoutingSource(primary, RoutingOptions{MaxStaleness: time.Millisecond})
	rs2.AddReplica(replica, func() ReplicaHealth {
		return ReplicaHealth{Connected: true, Staleness: time.Hour}
	})
	if _, err := rs2.Workflows(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := rs2.Stats(); got.PrimaryReads != 1 || got.ReplicaReads != 0 {
		t.Fatalf("stale replica served a read: %+v", got)
	}
}

// TestReplicaSurvivesRestart restarts a follower store from disk and
// resumes replication from the recovered offset.
func TestReplicaSurvivesRestart(t *testing.T) {
	primary := openStore(t, t.TempDir(), 0)
	defer primary.Close()
	if err := primary.RegisterDataflow(testSpec("df")); err != nil {
		t.Fatal(err)
	}
	srv := startPrimary(t, primary, Options{HeartbeatInterval: 20 * time.Millisecond})

	dir := t.TempDir()
	replica := openStore(t, dir, 0)
	f := startFollower(t, replica, FollowerOptions{Primary: srv.Addr(), ID: "r1"})
	ingestN(t, primary, "dev-1", 0, 6)
	waitFor(t, "catch-up", caughtUp(primary, f))
	f.Stop()
	replica.Close()

	ingestN(t, primary, "dev-1", 6, 6)
	replica2 := openStore(t, dir, 0)
	defer replica2.Close()
	f2 := startFollower(t, replica2, FollowerOptions{Primary: srv.Addr(), ID: "r1"})
	waitFor(t, "resume from recovered offset", caughtUp(primary, f2))
	assertSameReads(t, primary, replica2)
}
