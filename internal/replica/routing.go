package replica

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/provlight/provlight/internal/source"
)

// ReplicaHealth is the routing view of one replica.
type ReplicaHealth struct {
	// LagRecords is how many WAL records the replica trails the primary.
	LagRecords uint64
	// Staleness is how long ago the replica last heard from the primary
	// (record or heartbeat).
	Staleness time.Duration
	// Connected reports a live replication session.
	Connected bool
}

// RoutingOptions bound how stale a replica may be and still serve reads.
type RoutingOptions struct {
	// MaxLagRecords is the largest acceptable record lag; 0 means
	// "any lag", which on a connected replica is usually what staleness
	// alone should govern.
	MaxLagRecords uint64
	// MaxStaleness is the oldest acceptable last-contact age.
	// Default 2 s.
	MaxStaleness time.Duration
}

// RoutingStats counts where reads went.
type RoutingStats struct {
	ReplicaReads uint64
	PrimaryReads uint64
}

// RoutingSource fans reads across read replicas, falling back to the
// primary when no replica is within the staleness bounds. It implements
// source.Source, so anything written against the Source API — the query
// CLI, live subscriptions' initial catch-up, user code — scales across
// replicas without change.
type RoutingSource struct {
	primary source.Source
	opts    RoutingOptions

	mu       sync.RWMutex
	replicas []routedReplica

	rr           atomic.Uint64
	replicaReads atomic.Uint64
	primaryReads atomic.Uint64
}

type routedReplica struct {
	src    source.Source
	health func() ReplicaHealth
}

// NewRoutingSource routes reads across replicas with primary as the
// always-correct fallback.
func NewRoutingSource(primary source.Source, opts RoutingOptions) *RoutingSource {
	if opts.MaxStaleness <= 0 {
		opts.MaxStaleness = 2 * time.Second
	}
	return &RoutingSource{primary: primary, opts: opts}
}

// AddReplica registers a replica and its health probe (typically
// Follower.Store and Follower.Health, or a remote dfanalyzer.Client
// paired with a /stats poll).
func (r *RoutingSource) AddReplica(src source.Source, health func() ReplicaHealth) {
	r.mu.Lock()
	r.replicas = append(r.replicas, routedReplica{src: src, health: health})
	r.mu.Unlock()
}

// pick chooses the serving source for one read: round-robin over the
// replicas currently within bounds, else the primary.
func (r *RoutingSource) pick() source.Source {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := len(r.replicas)
	if n > 0 {
		start := int(r.rr.Add(1)) % n
		for i := 0; i < n; i++ {
			cand := r.replicas[(start+i)%n]
			h := cand.health()
			if !h.Connected || h.Staleness > r.opts.MaxStaleness {
				continue
			}
			if r.opts.MaxLagRecords > 0 && h.LagRecords > r.opts.MaxLagRecords {
				continue
			}
			r.replicaReads.Add(1)
			return cand.src
		}
	}
	r.primaryReads.Add(1)
	return r.primary
}

// Stats reports how many reads each side served.
func (r *RoutingSource) Stats() RoutingStats {
	return RoutingStats{
		ReplicaReads: r.replicaReads.Load(),
		PrimaryReads: r.primaryReads.Load(),
	}
}

var _ source.Source = (*RoutingSource)(nil)

// Select implements source.Source.
func (r *RoutingSource) Select(ctx context.Context, q source.Query) ([]source.Row, error) {
	return r.pick().Select(ctx, q)
}

// Task implements source.Source.
func (r *RoutingSource) Task(ctx context.Context, workflow, id string) (*source.TaskInfo, error) {
	return r.pick().Task(ctx, workflow, id)
}

// Tasks implements source.Source.
func (r *RoutingSource) Tasks(ctx context.Context, workflow string) ([]source.TaskInfo, error) {
	return r.pick().Tasks(ctx, workflow)
}

// Workflows implements source.Source.
func (r *RoutingSource) Workflows(ctx context.Context) ([]string, error) {
	return r.pick().Workflows(ctx)
}
