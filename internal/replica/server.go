package replica

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"github.com/provlight/provlight/internal/dfanalyzer"
	"github.com/provlight/provlight/internal/wal"
)

// Options configures the primary side of replication.
type Options struct {
	// MinSync is how many followers must confirm a WAL position durable
	// before WaitCommitted releases it — the semi-synchronous replication
	// knob. 0 (the default) makes replication fully asynchronous: acks
	// never wait, and a primary crash can lose frames acked but not yet
	// shipped. Deployments that promote followers on failure want >= 1.
	MinSync int
	// HeartbeatInterval is how often an idle stream sends its tail
	// position (the follower's staleness clock). Default 500 ms.
	HeartbeatInterval time.Duration
	// OnError receives asynchronous per-follower stream errors.
	OnError func(error)
}

// Server ships a primary store's WAL to followers. One goroutine per
// follower streams records (sealed segments for catch-up, then the live
// tail via the WAL's append notification); a second reads acks.
type Server struct {
	store *dfanalyzer.Store
	log   *wal.Log
	opts  Options

	lis net.Listener

	mu        sync.Mutex
	followers map[string]*followerConn
	commitCh  chan struct{} // closed+replaced whenever an ack advances
	closed    bool
	stop      chan struct{}

	wg sync.WaitGroup
}

// followerConn is the server's per-follower state.
type followerConn struct {
	id   string
	conn net.Conn
	// wake (1-buffered) is this follower's fan-out of the WAL's append
	// notification: the log's own Notify channel is single-consumer, so
	// the pump goroutine re-broadcasts it to every streaming session.
	wake chan struct{}

	mu          sync.Mutex
	sentSeq     uint64
	ackedSeq    uint64
	lagBytes    uint64
	outstanding []recMeta // sent, unacked records (pruned on ack)
}

type recMeta struct {
	seq   uint64
	bytes uint64
}

// NewServer wraps a durable primary store. The store is marked primary
// (adopting term 1 if it never had one) so its term is stamped into the
// WAL before any follower connects.
func NewServer(store *dfanalyzer.Store, opts Options) (*Server, error) {
	log := store.ReplicationWAL()
	if log == nil {
		return nil, fmt.Errorf("replica: store is in-memory; replication needs a durable store (dfanalyzer.OpenStore)")
	}
	if opts.HeartbeatInterval <= 0 {
		opts.HeartbeatInterval = 500 * time.Millisecond
	}
	if err := store.BecomePrimary(); err != nil {
		return nil, err
	}
	return &Server{
		store:     store,
		log:       log,
		opts:      opts,
		followers: map[string]*followerConn{},
		commitCh:  make(chan struct{}),
		stop:      make(chan struct{}),
	}, nil
}

// Start listens for follower connections on addr (e.g. "127.0.0.1:0").
func (s *Server) Start(addr string) error {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("replica: listen %s: %w", addr, err)
	}
	s.lis = lis
	s.wg.Add(2)
	go s.acceptLoop()
	go s.notifyPump()
	return nil
}

// notifyPump re-broadcasts the WAL's (single-consumer) append
// notification to every streaming session, so all followers tail the
// live log with append-latency wakeups instead of one lucky follower
// per append and heartbeat-latency for the rest.
func (s *Server) notifyPump() {
	defer s.wg.Done()
	for {
		select {
		case <-s.log.Notify():
		case <-s.stop:
			return
		}
		s.mu.Lock()
		for _, f := range s.followers {
			select {
			case f.wake <- struct{}{}:
			default:
			}
		}
		s.mu.Unlock()
	}
}

// Addr returns the replication listen address.
func (s *Server) Addr() string {
	if s.lis == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// Close stops accepting and severs every follower stream.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.stop)
	conns := make([]net.Conn, 0, len(s.followers))
	for _, f := range s.followers {
		conns = append(conns, f.conn)
	}
	s.mu.Unlock()
	if s.lis != nil {
		_ = s.lis.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if err := s.serveFollower(conn); err != nil && s.opts.OnError != nil {
				s.opts.OnError(err)
			}
		}()
	}
}

// serveFollower runs one replication session: handshake, optional
// snapshot, then the record stream until the connection drops.
func (s *Server) serveFollower(conn net.Conn) error {
	defer conn.Close()
	br := bufio.NewReader(conn)
	typ, payload, err := readMsg(br)
	if err != nil {
		return fmt.Errorf("replica: read hello: %w", err)
	}
	if typ != msgHello {
		return fmt.Errorf("replica: expected hello, got message type %d", typ)
	}
	var hello helloMsg
	if err := json.Unmarshal(payload, &hello); err != nil {
		return fmt.Errorf("replica: decode hello: %w", err)
	}
	if hello.ID == "" {
		hello.ID = conn.RemoteAddr().String()
	}
	if err := s.checkLineage(&hello); err != nil {
		_ = writeMsg(conn, msgError, []byte(err.Error()))
		return fmt.Errorf("replica: reject follower %s: %w", hello.ID, err)
	}

	f := s.register(hello.ID, conn)
	if f == nil {
		return nil // server closing
	}
	defer s.unregister(f)

	start := hello.From
	if start == 0 {
		start = 1
	}
	first := s.log.FirstSeq()
	welcome := welcomeMsg{
		Term:     s.store.CurrentTerm(),
		FirstSeq: first,
		LastSeq:  s.log.LastSeq(),
		// A follower asking for records older than the retained WAL can
		// only be caught up through a snapshot (the primary reclaimed
		// those segments behind its own snapshot).
		Snapshot: first > 0 && start < first,
	}
	if err := writeJSONMsg(conn, msgWelcome, &welcome); err != nil {
		return fmt.Errorf("replica: write welcome: %w", err)
	}
	if welcome.Snapshot {
		data, snapSeq, err := s.store.SnapshotBytes()
		if err != nil {
			return fmt.Errorf("replica: snapshot for %s: %w", hello.ID, err)
		}
		if err := writeMsg(conn, msgSnapshot, seqPayload(snapSeq, data)); err != nil {
			return fmt.Errorf("replica: ship snapshot: %w", err)
		}
		if snapSeq+1 > start {
			start = snapSeq + 1
		}
	}

	// Ack reader: the only follower→primary traffic after the hello.
	ackDone := make(chan struct{})
	go func() {
		defer close(ackDone)
		for {
			typ, payload, err := readMsg(br)
			if err != nil {
				_ = conn.Close() // unblock the stream loop
				return
			}
			if typ != msgAck {
				continue
			}
			if seq, _, err := splitSeqPayload(payload); err == nil {
				s.recordAck(f, seq)
			}
		}
	}()
	err = s.streamRecords(f, conn, start)
	<-ackDone
	return err
}

// checkLineage rejects followers that cannot safely resume from this
// primary's WAL.
func (s *Server) checkLineage(hello *helloMsg) error {
	term := s.store.CurrentTerm()
	if hello.Term > term {
		// The follower has seen a newer term than ours: *we* are the
		// deposed node here and must not feed it anything.
		return fmt.Errorf("%w: follower at term %d, primary at %d",
			dfanalyzer.ErrStaleTerm, hello.Term, term)
	}
	if hello.Term < term && hello.LastApplied >= s.store.TermStartSeq() {
		// The follower's log reaches the seq where our term began, under
		// an older term: its record at that seq cannot be our term record
		// (applying it would have taught it our term), so its tail was
		// never replicated into this lineage (the classic
		// deposed-primary-rejoins case). >= because the term record
		// itself occupies TermStartSeq — an in-sync follower stops at
		// TermStartSeq-1.
		return fmt.Errorf("%w: follower term %d applied through %d, but term %d began at %d",
			dfanalyzer.ErrDiverged, hello.Term, hello.LastApplied, term, s.store.TermStartSeq())
	}
	if last := s.log.LastSeq(); hello.LastApplied > last {
		return fmt.Errorf("%w: follower applied through %d, primary log ends at %d",
			dfanalyzer.ErrDiverged, hello.LastApplied, last)
	}
	return nil
}

// streamRecords ships WAL records from start until the connection fails,
// tailing the live log via its append notification and heartbeating when
// idle. Outbound records go through a buffered writer flushed only at the
// caught-up boundary: while the follower is behind, records coalesce into
// large TCP segments (one syscall per buffer-full instead of per record),
// and the flush right before blocking keeps the live-tail latency at one
// loop iteration.
func (s *Server) streamRecords(f *followerConn, conn net.Conn, start uint64) error {
	bw := bufio.NewWriterSize(conn, 64<<10)
	r := s.log.ReadFrom(start)
	defer r.Close()
	heartbeat := time.NewTicker(s.opts.HeartbeatInterval)
	defer heartbeat.Stop()
	expected := start
	var buf []byte
	for {
		seq, payload, ok, err := r.Next(buf[:0])
		if err != nil {
			// Permanent read error at this position (corrupt retained
			// record): tell the follower to resync and drop the session.
			if writeMsg(bw, msgError, []byte("primary WAL read error: "+err.Error())) == nil {
				_ = bw.Flush()
			}
			return fmt.Errorf("replica: stream to %s: %w", f.id, err)
		}
		if ok {
			buf = payload
			if seq > expected && s.log.FirstSeq() > expected {
				// The reader skipped forward because the records at
				// `expected` were truncated away (snapshot reclaim racing a
				// slow follower) — not a benign quarantine gap. The follower
				// must restart the handshake to receive a snapshot.
				if writeMsg(bw, msgError, []byte("log truncated behind stream; reconnect for snapshot")) == nil {
					_ = bw.Flush()
				}
				return nil
			}
			if err := writeMsg(bw, msgRecord, seqPayload(seq, payload)); err != nil {
				return nil // connection dropped; follower will reconnect
			}
			f.noteSent(seq, uint64(len(payload)))
			expected = seq + 1
			continue
		}
		// Caught up: push everything batched so far to the wire, then wait
		// for an append, a heartbeat tick, or EOF.
		if err := bw.Flush(); err != nil {
			return nil
		}
		select {
		case <-f.wake:
		case <-s.stop:
			return nil
		case <-heartbeat.C:
			if writeMsg(bw, msgHeartbeat, seqPayload(s.log.LastSeq(), nil)) != nil {
				return nil
			}
			if err := bw.Flush(); err != nil {
				return nil
			}
		}
	}
}

func (s *Server) register(id string, conn net.Conn) *followerConn {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if old, ok := s.followers[id]; ok {
		_ = old.conn.Close() // a reconnect replaces the stale session
	}
	f := &followerConn{id: id, conn: conn, wake: make(chan struct{}, 1)}
	s.followers[id] = f
	return f
}

func (s *Server) unregister(f *followerConn) {
	s.mu.Lock()
	if s.followers[f.id] == f {
		delete(s.followers, f.id)
	}
	s.mu.Unlock()
}

func (f *followerConn) noteSent(seq, bytes uint64) {
	f.mu.Lock()
	f.sentSeq = seq
	f.lagBytes += bytes
	f.outstanding = append(f.outstanding, recMeta{seq: seq, bytes: bytes})
	f.mu.Unlock()
}

// recordAck advances a follower's durable position and wakes semi-sync
// waiters.
func (s *Server) recordAck(f *followerConn, seq uint64) {
	f.mu.Lock()
	if seq <= f.ackedSeq {
		f.mu.Unlock()
		return
	}
	f.ackedSeq = seq
	drop := 0
	for drop < len(f.outstanding) && f.outstanding[drop].seq <= seq {
		f.lagBytes -= f.outstanding[drop].bytes
		drop++
	}
	f.outstanding = f.outstanding[drop:]
	f.mu.Unlock()

	s.mu.Lock()
	close(s.commitCh)
	s.commitCh = make(chan struct{})
	s.mu.Unlock()
}

// committedSeq returns the highest WAL position confirmed durable on at
// least MinSync followers (the MinSync-th largest follower ack). With
// MinSync == 0 everything counts as committed.
func (s *Server) committedSeq() uint64 {
	if s.opts.MinSync <= 0 {
		return ^uint64(0)
	}
	s.mu.Lock()
	acks := make([]uint64, 0, len(s.followers))
	for _, f := range s.followers {
		f.mu.Lock()
		acks = append(acks, f.ackedSeq)
		f.mu.Unlock()
	}
	s.mu.Unlock()
	if len(acks) < s.opts.MinSync {
		return 0
	}
	sort.Slice(acks, func(i, j int) bool { return acks[i] > acks[j] })
	return acks[s.opts.MinSync-1]
}

// WaitCommitted blocks until seq is durable on at least MinSync
// followers, or ctx expires. It returns immediately when MinSync == 0.
func (s *Server) WaitCommitted(ctx context.Context, seq uint64) error {
	for {
		if s.committedSeq() >= seq {
			return nil
		}
		s.mu.Lock()
		ch := s.commitCh
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return errors.New("replica: server closed while waiting for replication")
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return fmt.Errorf("replica: %d not replicated to %d follower(s): %w",
				seq, s.opts.MinSync, ctx.Err())
		}
	}
}

// CommitGate returns a translate.Config.AckGate: each call waits (up to
// timeout) until everything appended to the primary WAL *so far* is
// durable on MinSync followers. Gating on the current tail rather than
// the batch's own seq is conservative but correct — the tail includes
// the batch.
func (s *Server) CommitGate(timeout time.Duration) func() error {
	return func() error {
		seq := s.log.LastSeq()
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		return s.WaitCommitted(ctx, seq)
	}
}

// Stats reports per-follower replication lag (records behind the primary
// tail, bytes sent but unacked).
func (s *Server) Stats() dfanalyzer.ReplicationStats {
	last := s.log.LastSeq()
	st := dfanalyzer.ReplicationStats{Listen: s.Addr(), MinSync: s.opts.MinSync}
	s.mu.Lock()
	ids := make([]string, 0, len(s.followers))
	for id := range s.followers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		f := s.followers[id]
		f.mu.Lock()
		fs := dfanalyzer.FollowerStats{
			ID:       f.id,
			AckedSeq: f.ackedSeq,
			SentSeq:  f.sentSeq,
			LagBytes: f.lagBytes,
		}
		if last > f.ackedSeq {
			fs.LagRecords = last - f.ackedSeq
		}
		f.mu.Unlock()
		st.Followers = append(st.Followers, fs)
	}
	s.mu.Unlock()
	return st
}

// AttachStats wires the server's follower view into a dfanalyzer HTTP
// server's /stats response.
func (s *Server) AttachStats(hs *dfanalyzer.Server) {
	hs.OnStats = func(st *dfanalyzer.StoreStats) {
		repl := s.Stats()
		st.Replication = &repl
	}
}
