package replica

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/provlight/provlight/internal/dfanalyzer"
	"github.com/provlight/provlight/internal/resilience"
)

// FollowerOptions configures one read replica.
type FollowerOptions struct {
	// Primary is the primary's replication listen address.
	Primary string
	// ID names this follower to the primary (stable across reconnects).
	// Default: the local store's data directory is not known here, so an
	// empty ID falls back to the connection's local address.
	ID string
	// Dial, when set, replaces net.Dial — the fault-injection hook
	// (chaos.Fault.Dialer).
	Dial func(network, addr string) (net.Conn, error)
	// ReconnectMin/ReconnectMax bound the exponential reconnect backoff.
	// Defaults 50 ms / 2 s.
	ReconnectMin, ReconnectMax time.Duration
	// AckInterval is how often the follower reports its applied position.
	// Default 50 ms.
	AckInterval time.Duration
	// OnError receives asynchronous session errors.
	OnError func(error)
}

// ErrDiverged re-exports the store's divergence error for callers that
// only import replica.
var ErrDiverged = dfanalyzer.ErrDiverged

// Follower replays a primary's WAL into a local durable store, making it
// a read replica: the store serves Source queries while every external
// write path is fenced off. The replication session reconnects with
// backoff until Stop or Promote.
type Follower struct {
	store *dfanalyzer.Store
	opts  FollowerOptions

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu   sync.Mutex
	conn net.Conn

	connected  atomic.Bool
	primarySeq atomic.Uint64
	// lastContact is the monotonic-ish wall clock of the last record or
	// heartbeat, the staleness input for read routing.
	lastContact atomic.Int64

	// fatal is set when the primary permanently rejected this follower
	// (divergence, stale term); the reconnect loop stops.
	fatalMu  sync.Mutex
	fatalErr error
}

// StartFollower marks store a read replica and begins replicating from
// opts.Primary. The store must be durable (dfanalyzer.OpenStore): the
// follower mirrors the primary's WAL into it so a promoted follower has
// the full recovery lineage.
func StartFollower(store *dfanalyzer.Store, opts FollowerOptions) (*Follower, error) {
	if store.ReplicationWAL() == nil {
		return nil, fmt.Errorf("replica: follower store is in-memory; use dfanalyzer.OpenStore")
	}
	if opts.Primary == "" {
		return nil, fmt.Errorf("replica: FollowerOptions.Primary required")
	}
	if opts.Dial == nil {
		opts.Dial = net.Dial
	}
	if opts.ReconnectMin <= 0 {
		opts.ReconnectMin = 50 * time.Millisecond
	}
	if opts.ReconnectMax <= 0 {
		opts.ReconnectMax = 2 * time.Second
	}
	if opts.AckInterval <= 0 {
		opts.AckInterval = 50 * time.Millisecond
	}
	store.BeginFollowing()
	ctx, cancel := context.WithCancel(context.Background())
	f := &Follower{store: store, opts: opts, ctx: ctx, cancel: cancel}
	f.wg.Add(1)
	go f.run()
	return f, nil
}

// run is the reconnect loop: dial, replicate until the session drops,
// back off, repeat — until Stop/Promote or a permanent rejection. The
// backoff schedule is the shared resilience policy (jittered exponential
// between ReconnectMin and ReconnectMax); a working session resets it.
func (f *Follower) run() {
	defer f.wg.Done()
	bo := resilience.Backoff{Min: f.opts.ReconnectMin, Max: f.opts.ReconnectMax}
	attempt := 0
	for f.ctx.Err() == nil && f.Err() == nil {
		conn, err := f.opts.Dial("tcp", f.opts.Primary)
		if err == nil {
			if f.session(conn) {
				attempt = 0 // a working session resets backoff
			}
		}
		select {
		case <-f.ctx.Done():
			return
		case <-time.After(bo.Delay(attempt)):
		}
		attempt++
	}
}

// session runs one replication session; ok reports whether the handshake
// succeeded (used to reset the reconnect backoff).
func (f *Follower) session(conn net.Conn) (ok bool) {
	defer conn.Close()
	f.mu.Lock()
	f.conn = conn
	f.mu.Unlock()
	defer func() {
		f.connected.Store(false)
		f.mu.Lock()
		f.conn = nil
		f.mu.Unlock()
	}()

	_, lastApplied := f.store.WALSeqs()
	hello := helloMsg{
		ID:          f.followerID(conn),
		From:        lastApplied + 1,
		Term:        f.store.CurrentTerm(),
		LastApplied: lastApplied,
	}
	if err := writeJSONMsg(conn, msgHello, &hello); err != nil {
		return false
	}
	// A deep read buffer is what feeds record coalescing below: each
	// syscall pulls a long run of the stream, applied as one batch.
	br := bufio.NewReaderSize(conn, 64<<10)
	typ, payload, err := readMsg(br)
	if err != nil {
		return false
	}
	if typ == msgError {
		f.handleRejection(string(payload))
		return false
	}
	if typ != msgWelcome {
		f.report(fmt.Errorf("replica: expected welcome, got message type %d", typ))
		return false
	}
	var welcome welcomeMsg
	if err := json.Unmarshal(payload, &welcome); err != nil {
		f.report(fmt.Errorf("replica: decode welcome: %w", err))
		return false
	}
	if welcome.Term < f.store.CurrentTerm() {
		// The dialed primary is on an older term than we are: it was
		// deposed (we may have been promoted, or learned the new term from
		// elsewhere). Never accept its records.
		f.report(fmt.Errorf("replica: refusing primary on stale term %d (local term %d)",
			welcome.Term, f.store.CurrentTerm()))
		return false
	}
	f.connected.Store(true)
	f.primarySeq.Store(welcome.LastSeq)
	f.touch()

	// Ack writer: the follower's only outbound traffic after the hello.
	ackCtx, stopAcks := context.WithCancel(f.ctx)
	var ackWg sync.WaitGroup
	ackWg.Add(1)
	go func() {
		defer ackWg.Done()
		ticker := time.NewTicker(f.opts.AckInterval)
		defer ticker.Stop()
		var lastSent uint64
		for {
			select {
			case <-ackCtx.Done():
				return
			case <-ticker.C:
				applied := f.store.AppliedSeq()
				if applied == lastSent {
					continue
				}
				if err := writeMsg(conn, msgAck, seqPayload(applied, nil)); err != nil {
					return
				}
				lastSent = applied
			}
		}
	}()
	defer func() {
		stopAcks()
		ackWg.Wait()
	}()

	// Records are coalesced: one message is read, then everything already
	// sitting in the read buffer is drained into the same batch, which the
	// store applies under a single commit-lock acquisition with one
	// batched WAL write. On a quiet stream the batch is a single record
	// and behavior matches record-at-a-time apply; under a firehose the
	// follower's per-record syscall cost — the thing that makes a replica
	// fall behind a primary it must keep up with — collapses.
	var batch []dfanalyzer.ReplRecord
	applyBatch := func() bool {
		if len(batch) == 0 {
			return true
		}
		if err := f.store.ApplyReplicatedBatch(batch); err != nil {
			f.report(fmt.Errorf("replica: apply records %d..%d: %w",
				batch[0].Seq, batch[len(batch)-1].Seq, err))
			return false
		}
		f.primarySeq.Store(maxU64(f.primarySeq.Load(), batch[len(batch)-1].Seq))
		f.touch()
		batch = batch[:0]
		return true
	}
	for {
		typ, payload, err := readMsg(br)
		if err != nil {
			return true // connection dropped; reconnect
		}
		switch typ {
		case msgSnapshot:
			if !applyBatch() {
				return true
			}
			snapSeq, data, err := splitSeqPayload(payload)
			if err != nil {
				f.report(err)
				return true
			}
			if _, err := f.store.InstallSnapshot(data); err != nil {
				wrapped := fmt.Errorf("replica: install snapshot: %w", err)
				f.report(wrapped)
				if errors.Is(err, dfanalyzer.ErrDiverged) {
					f.setFatal(resilience.Permanent(wrapped))
				}
				return true
			}
			f.primarySeq.Store(maxU64(f.primarySeq.Load(), snapSeq))
			f.touch()
		case msgRecord:
			seq, body, err := splitSeqPayload(payload)
			if err != nil {
				f.report(err)
				return true
			}
			batch = append(batch, dfanalyzer.ReplRecord{Seq: seq, Payload: body})
			if len(batch) < maxApplyBatch && br.Buffered() > 0 {
				continue // more of the stream already arrived; keep batching
			}
			if !applyBatch() {
				return true
			}
		case msgHeartbeat:
			if !applyBatch() {
				return true
			}
			seq, _, err := splitSeqPayload(payload)
			if err == nil {
				f.primarySeq.Store(maxU64(f.primarySeq.Load(), seq))
			}
			f.touch()
		case msgError:
			applyBatch()
			f.handleRejection(string(payload))
			return true
		}
	}
}

// maxApplyBatch bounds how many coalesced records one ApplyReplicatedBatch
// call may carry, keeping commit-lock hold times (and the reader-visible
// apply granularity) modest.
const maxApplyBatch = 256

// handleRejection classifies a primary-sent error: divergence and
// stale-term rejections are permanent in the resilience sense (the
// reconnect loop stops — an operator must reset or re-point this
// replica); everything else (e.g. "log truncated, reconnect for
// snapshot") is retried.
func (f *Follower) handleRejection(reason string) {
	err := fmt.Errorf("replica: primary rejected session: %s", reason)
	switch {
	case strings.Contains(reason, "diverged"):
		err = resilience.Permanent(fmt.Errorf("replica: primary rejected session: %s: %w", reason, ErrDiverged))
		f.setFatal(err)
	case strings.Contains(reason, "term"):
		err = resilience.Permanent(fmt.Errorf("replica: primary rejected session: %s: %w", reason, dfanalyzer.ErrStaleTerm))
		f.setFatal(err)
	}
	f.report(err)
}

func (f *Follower) followerID(conn net.Conn) string {
	if f.opts.ID != "" {
		return f.opts.ID
	}
	return conn.LocalAddr().String()
}

func (f *Follower) touch() {
	f.lastContact.Store(time.Now().UnixNano())
}

func (f *Follower) report(err error) {
	if f.opts.OnError != nil {
		f.opts.OnError(err)
	}
}

func (f *Follower) setFatal(err error) {
	f.fatalMu.Lock()
	if f.fatalErr == nil {
		f.fatalErr = err
	}
	f.fatalMu.Unlock()
}

// Err returns the permanent rejection that stopped the reconnect loop,
// if any (divergence, stale term).
func (f *Follower) Err() error {
	f.fatalMu.Lock()
	defer f.fatalMu.Unlock()
	return f.fatalErr
}

// Stop ends replication; the store stays a read replica.
func (f *Follower) Stop() {
	f.cancel()
	f.mu.Lock()
	if f.conn != nil {
		_ = f.conn.Close()
	}
	f.mu.Unlock()
	f.wg.Wait()
}

// Promote stops replication and promotes the local store to primary of a
// new term (term+1, WAL-logged as the promotion point). Returns the new
// term. The caller is responsible for promoting the *most caught-up*
// follower — compare AppliedSeq across candidates first; with semi-sync
// acks (Server.MinSync >= 1) that follower is guaranteed to hold every
// acknowledged frame.
func (f *Follower) Promote() (uint64, error) {
	f.Stop()
	return f.store.Promote()
}

// AppliedSeq returns the last WAL sequence replayed into the local
// store and visible to queries — the promotion fitness metric. (The
// local WAL tail can run ahead of it momentarily inside a batched
// apply; acks and read routing use this, the conservative cursor.)
func (f *Follower) AppliedSeq() uint64 {
	return f.store.AppliedSeq()
}

// Store returns the local replica store (a source.Source for reads).
func (f *Follower) Store() *dfanalyzer.Store { return f.store }

// Health returns the routing view of this replica: how far it trails the
// primary and how fresh its stream is.
func (f *Follower) Health() ReplicaHealth {
	applied := f.AppliedSeq()
	primary := f.primarySeq.Load()
	h := ReplicaHealth{Connected: f.connected.Load()}
	if primary > applied {
		h.LagRecords = primary - applied
	}
	if last := f.lastContact.Load(); last > 0 {
		h.Staleness = time.Since(time.Unix(0, last))
	} else {
		h.Staleness = time.Duration(1<<63 - 1) // never heard from the primary
	}
	return h
}

// Stats returns the follower's replication health for /stats.
func (f *Follower) Stats() dfanalyzer.ReplicaStats {
	h := f.Health()
	return dfanalyzer.ReplicaStats{
		Primary:         f.opts.Primary,
		AppliedSeq:      f.AppliedSeq(),
		PrimarySeq:      f.primarySeq.Load(),
		LagRecords:      h.LagRecords,
		StalenessMillis: h.Staleness.Milliseconds(),
		Connected:       h.Connected,
	}
}

// AttachStats wires the follower's health into a dfanalyzer HTTP
// server's /stats response (the read-replica serving endpoint).
func (f *Follower) AttachStats(hs *dfanalyzer.Server) {
	hs.OnStats = func(st *dfanalyzer.StoreStats) {
		rs := f.Stats()
		st.Replica = &rs
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
