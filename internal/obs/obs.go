// Package obs is ProvLight's unified observability layer: a
// zero-dependency metrics registry with Prometheus text exposition
// (version 0.0.4), designed so that every recording operation on a hot
// path costs at most a couple of uncontended atomic adds.
//
// Three concrete instrument kinds cover the stack:
//
//   - Counter: a monotonically increasing atomic uint64.
//   - Gauge: a settable float64 (atomic bits).
//   - Histogram: fixed upper-bound buckets with atomic per-bucket counts
//     plus an atomically accumulated sum — safe to Observe concurrently.
//
// Each kind has a labeled *Vec variant. Vec children are resolved through
// a copy-on-write map snapshot, so the steady-state With lookup is
// lock-free; callers on hot paths should still cache the child pointer.
//
// Components whose counters already live in a Stats()/StatsSnapshot()
// struct do not duplicate them into instruments: they register a Collect
// callback that, at scrape time only, reads the snapshot and emits
// samples — including dynamically labeled ones (per cluster peer, per
// replication follower) that a static instrument cannot express. The hot
// path pays nothing for these.
//
// Every constructor is get-or-create: asking for an existing name with a
// matching kind and label set returns the registered instrument, so
// several components can share one family (e.g. the per-stage frame
// latency histogram). A nil *Registry is valid everywhere and yields nil
// instruments whose methods no-op, so metrics wiring is always optional.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Frame-pipeline stage names recorded into StageLatencyName by the
// capture client, broker, cluster, and translator. Each stage observes
// the latency from the frame's capture timestamp (the trace header wire
// frames carry, see wire.FrameCaptureNS) to the moment the frame passed
// that stage, so the exposed histograms are cumulative end-to-end
// distributions: durable_apply is the full capture->apply provenance
// latency, and the differences between stages isolate each hop.
const (
	// StageCapturePublish: frame handed to the client's transport (spool
	// dwell time included for store-and-forward clients).
	StageCapturePublish = "capture_publish"
	// StageBrokerRoute: frame released and routed by a broker.
	StageBrokerRoute = "broker_route"
	// StageForwardHop: frame arrived at its topic's owning cluster node
	// after crossing an inter-node forwarding link.
	StageForwardHop = "forward_hop"
	// StageTranslate: frame decoded by a translator.
	StageTranslate = "translate"
	// StageDurableApply: frame's batch delivered to every translator
	// target (with a durable target, the point it became ack-able).
	StageDurableApply = "durable_apply"
)

// StageLatencyName is the shared per-stage frame latency family.
const StageLatencyName = "provlight_stage_latency_seconds"

// StageLatency returns the shared per-stage latency histogram family.
func StageLatency(r *Registry) *HistogramVec {
	return r.HistogramVec(StageLatencyName,
		"End-to-end frame latency from capture to each pipeline stage.",
		LatencyBuckets, "stage")
}

// ObserveSince records the elapsed time since the capture timestamp
// captureNS (Unix nanoseconds) into h. Zero captureNS (untraced frame)
// and nil histograms are ignored; a small negative elapsed (clock skew
// between hosts) is clamped to zero so it lands in the first bucket
// rather than vanishing.
func ObserveSince(h *Histogram, captureNS int64) {
	if h == nil || captureNS == 0 {
		return
	}
	d := time.Now().UnixNano() - captureNS
	if d < 0 {
		d = 0
	}
	h.Observe(float64(d) / 1e9)
}

// LatencyBuckets spans 100µs to 30s exponentially: wide enough for a
// same-host hop and a congested WAN retry alike.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// BatchBuckets suits small-integer distributions (micro-batch sizes,
// window occupancies).
var BatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one. Safe on a nil receiver (no-op).
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta (CAS loop; gauges are not hot-path instruments).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed upper-bound buckets. Observe
// is two uncontended atomic adds plus a CAS for the sum; buckets are
// shared by every child of a family.
type Histogram struct {
	upper   []float64 // sorted upper bounds, +Inf excluded
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{upper: buckets, counts: make([]atomic.Uint64, len(buckets)+1)}
}

// Observe records v. Safe on a nil receiver (no-op).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket lists are short (<= ~20) and the common
	// latencies hit the first few bounds, beating a binary search's
	// branch misses in practice.
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// family is one registered metric name: its metadata and children (one
// per label-value combination; the empty key for unlabeled instruments).
type family struct {
	name    string
	help    string
	kind    kind
	labels  []string
	buckets []float64

	mu       sync.Mutex                     // guards child creation
	children atomic.Pointer[map[string]any] // copy-on-write snapshot
}

// child returns the instrument for key, creating it with mk on first use.
// The read path is a single atomic pointer load plus a map lookup.
func (f *family) child(key string, mk func() any) any {
	if m := f.children.Load(); m != nil {
		if c, ok := (*m)[key]; ok {
			return c
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	old := f.children.Load()
	if old != nil {
		if c, ok := (*old)[key]; ok {
			return c
		}
	}
	next := make(map[string]any, 1)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	c := mk()
	next[key] = c
	f.children.Store(&next)
	return c
}

// labelSep joins label values into child keys; 0xff cannot appear in
// UTF-8 text, so joined keys never collide.
const labelSep = "\xff"

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the child counter for the given label values (in the
// family's label order). Nil-safe; hot paths should cache the child.
func (v *CounterVec) With(lvs ...string) *Counter {
	if v == nil {
		return nil
	}
	v.f.checkArity(len(lvs))
	return v.f.child(strings.Join(lvs, labelSep), func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(lvs ...string) *Gauge {
	if v == nil {
		return nil
	}
	v.f.checkArity(len(lvs))
	return v.f.child(strings.Join(lvs, labelSep), func() any { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(lvs ...string) *Histogram {
	if v == nil {
		return nil
	}
	v.f.checkArity(len(lvs))
	return v.f.child(strings.Join(lvs, labelSep), func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

func (f *family) checkArity(n int) {
	if n != len(f.labels) {
		panic(fmt.Sprintf("obs: %s expects %d label values, got %d", f.name, len(f.labels), n))
	}
}

// Registry holds metric families and scrape-time collectors. The zero
// value is not usable; create with NewRegistry. All methods are safe for
// concurrent use, and all are safe on a nil receiver (returning nil
// instruments), so components can thread an optional registry without
// branching.
type Registry struct {
	mu         sync.Mutex
	fams       map[string]*family
	collectors []func(*Emitter)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// register resolves name to its family, creating it on first use and
// panicking on a kind or label-arity conflict — two components disagreeing
// about a metric's shape is a programming error worth failing loudly on.
func (r *Registry) register(name, help string, k kind, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != k || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: %s re-registered as %s with %d labels (was %s with %d)",
				name, k, len(labels), f.kind, len(f.labels)))
		}
		return f
	}
	f := &family{name: name, help: help, kind: k, labels: labels, buckets: buckets}
	r.fams[name] = f
	return f
}

// Counter returns the (unlabeled) counter registered under name.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.register(name, help, kindCounter, nil, nil)
	return f.child("", func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the (unlabeled) gauge registered under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.register(name, help, kindGauge, nil, nil)
	return f.child("", func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the (unlabeled) histogram registered under name.
// buckets are the sorted upper bounds (+Inf implied); they are fixed at
// first registration.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	f := r.register(name, help, kindHistogram, buckets, nil)
	return f.child("", func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// CounterVec returns the labeled counter family registered under name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.register(name, help, kindCounter, nil, labels)}
}

// GaugeVec returns the labeled gauge family registered under name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.register(name, help, kindGauge, nil, labels)}
}

// HistogramVec returns the labeled histogram family registered under name.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.register(name, help, kindHistogram, buckets, labels)}
}

// Collect registers a scrape-time callback: fn runs on every exposition
// and emits samples computed on the spot — typically from a component's
// existing Stats() snapshot. Collectors must not block; they may emit
// any label set, which is how per-peer and per-follower series with
// dynamic membership are exposed.
func (r *Registry) Collect(fn func(e *Emitter)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// sample is one exposition line before formatting.
type sample struct {
	suffix string // "", "_bucket", "_sum", "_count"
	labels string // pre-rendered {...} content, "" for none
	value  float64
	uvalue uint64
	isUint bool
}

// outFam is a family's scrape-time view.
type outFam struct {
	help    string
	kind    kind
	samples []sample
}

// Emitter receives samples from Collect callbacks.
type Emitter struct {
	fams  map[string]*outFam
	order *[]string
}

func (e *Emitter) fam(name, help string, k kind) *outFam {
	f, ok := e.fams[name]
	if !ok {
		f = &outFam{help: help, kind: k}
		e.fams[name] = f
		*e.order = append(*e.order, name)
	}
	return f
}

// Counter emits a counter sample. kv are label name/value pairs.
func (e *Emitter) Counter(name, help string, v float64, kv ...string) {
	f := e.fam(name, help, kindCounter)
	f.samples = append(f.samples, sample{labels: renderPairs(kv), value: v})
}

// Gauge emits a gauge sample. kv are label name/value pairs.
func (e *Emitter) Gauge(name, help string, v float64, kv ...string) {
	f := e.fam(name, help, kindGauge)
	f.samples = append(f.samples, sample{labels: renderPairs(kv), value: v})
}

// renderPairs formats alternating name/value pairs as exposition labels,
// skipping pairs with empty values.
func renderPairs(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: odd label name/value list")
	}
	var b strings.Builder
	for i := 0; i+1 < len(kv); i += 2 {
		if kv[i+1] == "" {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// renderInstrumentLabels formats a family's declared labels against a
// child key.
func renderInstrumentLabels(names []string, key string) string {
	if len(names) == 0 {
		return ""
	}
	values := strings.Split(key, labelSep)
	var b strings.Builder
	for i, n := range names {
		v := ""
		if i < len(values) {
			v = values[i]
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteTo writes the registry's current state in Prometheus text
// exposition format 0.0.4: instruments first, then everything the
// Collect callbacks emit, families sorted by name, HELP/TYPE once per
// family.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	if r == nil {
		return 0, nil
	}
	r.mu.Lock()
	fams := make(map[string]*family, len(r.fams))
	for k, v := range r.fams {
		fams[k] = v
	}
	collectors := append([]func(*Emitter){}, r.collectors...)
	r.mu.Unlock()

	var order []string
	out := map[string]*outFam{}
	e := &Emitter{fams: out, order: &order}

	for name, f := range fams {
		of := &outFam{help: f.help, kind: f.kind}
		out[name] = of
		order = append(order, name)
		m := f.children.Load()
		if m == nil {
			continue
		}
		keys := make([]string, 0, len(*m))
		for k := range *m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			lbl := renderInstrumentLabels(f.labels, key)
			switch c := (*m)[key].(type) {
			case *Counter:
				of.samples = append(of.samples, sample{labels: lbl, uvalue: c.Value(), isUint: true})
			case *Gauge:
				of.samples = append(of.samples, sample{labels: lbl, value: c.Value()})
			case *Histogram:
				cum := uint64(0)
				for i := range c.counts {
					cum += c.counts[i].Load()
					le := "+Inf"
					if i < len(c.upper) {
						le = formatValue(c.upper[i])
					}
					bl := lbl
					if bl != "" {
						bl += ","
					}
					bl += `le="` + le + `"`
					of.samples = append(of.samples, sample{suffix: "_bucket", labels: bl, uvalue: cum, isUint: true})
				}
				of.samples = append(of.samples, sample{suffix: "_sum", labels: lbl, value: c.Sum()})
				of.samples = append(of.samples, sample{suffix: "_count", labels: lbl, uvalue: c.Count(), isUint: true})
			}
		}
	}
	for _, fn := range collectors {
		fn(e)
	}

	sort.Strings(order)
	var b strings.Builder
	for _, name := range order {
		f := out[name]
		if f.help != "" {
			b.WriteString("# HELP ")
			b.WriteString(name)
			b.WriteByte(' ')
			b.WriteString(strings.ReplaceAll(f.help, "\n", " "))
			b.WriteByte('\n')
		}
		b.WriteString("# TYPE ")
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(f.kind.String())
		b.WriteByte('\n')
		for _, s := range f.samples {
			b.WriteString(name)
			b.WriteString(s.suffix)
			if s.labels != "" {
				b.WriteByte('{')
				b.WriteString(s.labels)
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			if s.isUint {
				b.WriteString(strconv.FormatUint(s.uvalue, 10))
			} else {
				b.WriteString(formatValue(s.value))
			}
			b.WriteByte('\n')
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}
