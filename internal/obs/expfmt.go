package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ScrapedSample is one parsed exposition line.
type ScrapedSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Scrape is a parsed exposition document.
type Scrape struct {
	Samples []ScrapedSample
	// Types maps family name to its declared TYPE.
	Types map[string]string
}

// ParseText is a minimal line-oriented parser for the Prometheus text
// exposition format — enough to validate what WriteTo produces and to
// let tests and smoke checks assert on scraped values without a
// dependency. It accepts HELP/TYPE comments, skips blank lines, and
// rejects anything it cannot parse (that is the point: a daemon emitting
// a malformed line should fail the smoke test).
func ParseText(r io.Reader) (*Scrape, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	out := &Scrape{Types: map[string]string{}}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && fields[1] == "TYPE" {
				if len(fields) < 4 {
					return nil, fmt.Errorf("obs: line %d: TYPE without a kind", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("obs: line %d: unknown TYPE %q", lineNo, fields[3])
				}
				out.Types[fields[2]] = fields[3]
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		out.Samples = append(out.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSampleLine(line string) (ScrapedSample, error) {
	s := ScrapedSample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value: %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if s.Name == "" || !isMetricName(s.Name) {
		return s, fmt.Errorf("bad metric name in %q", line)
	}
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuote := false
		esc := false
		for i := 1; i < len(rest); i++ {
			c := rest[i]
			switch {
			case esc:
				esc = false
			case inQuote && c == '\\':
				esc = true
			case c == '"':
				inQuote = !inQuote
			case !inQuote && c == '}':
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set: %q", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	// An integer timestamp may follow the value; we only need the value,
	// but anything else trailing is malformed.
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		ts := strings.TrimSpace(rest[i+1:])
		if _, err := strconv.ParseInt(ts, 10, 64); err != nil {
			return s, fmt.Errorf("trailing garbage %q", ts)
		}
		rest = rest[:i]
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", rest, err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string, into map[string]string) error {
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq <= 0 {
			return fmt.Errorf("bad label in %q", body)
		}
		name := strings.TrimSpace(body[:eq])
		body = body[eq+1:]
		if len(body) == 0 || body[0] != '"' {
			return fmt.Errorf("unquoted label value for %s", name)
		}
		var b strings.Builder
		i := 1
		closed := false
		for i < len(body) {
			c := body[i]
			if c == '\\' && i+1 < len(body) {
				switch body[i+1] {
				case 'n':
					b.WriteByte('\n')
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				default:
					return fmt.Errorf("bad escape \\%c", body[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			b.WriteByte(c)
			i++
		}
		if !closed {
			return fmt.Errorf("unterminated label value for %s", name)
		}
		into[name] = b.String()
		body = strings.TrimPrefix(strings.TrimSpace(body[i:]), ",")
		body = strings.TrimSpace(body)
	}
	return nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return inf(1), nil
	case "-Inf":
		return inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

func inf(sign int) float64 {
	v, _ := strconv.ParseFloat("inf", 64)
	if sign < 0 {
		return -v
	}
	return v
}

func isMetricName(s string) bool {
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Value returns the first sample matching name and every given label
// name/value pair, and whether one was found.
func (sc *Scrape) Value(name string, kv ...string) (float64, bool) {
	for _, s := range sc.Samples {
		if s.Name != name {
			continue
		}
		match := true
		for i := 0; i+1 < len(kv); i += 2 {
			if s.Labels[kv[i]] != kv[i+1] {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// Has reports whether any sample of name (or name with a histogram
// suffix) is present.
func (sc *Scrape) Has(name string) bool {
	for _, s := range sc.Samples {
		if s.Name == name || strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(s.Name, "_bucket"), "_sum"), "_count") == name {
			return true
		}
	}
	return false
}

// Families returns the sorted distinct family names seen in samples,
// histogram suffixes folded into their base name.
func (sc *Scrape) Families() []string {
	set := map[string]bool{}
	for _, s := range sc.Samples {
		n := s.Name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(n, suf); base != n && sc.Types[base] == "histogram" {
				n = base
				break
			}
		}
		set[n] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
