package obs

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterHistogramConcurrency hammers the hot-path instruments from
// many goroutines (run under -race in CI) and checks the totals add up.
func TestCounterHistogramConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	h := r.Histogram("test_latency_seconds", "lat", LatencyBuckets)
	cv := r.CounterVec("test_labeled_total", "labeled ops", "worker")
	hv := r.HistogramVec("test_labeled_seconds", "labeled lat", BatchBuckets, "worker")

	const goroutines = 8
	const perG = 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			worker := string(rune('a' + id%4))
			lc := cv.With(worker)
			lh := hv.With(worker)
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(float64(i%100) / 1000)
				lc.Add(2)
				lh.Observe(float64(i % 300))
			}
		}(g)
	}
	// Concurrent scrapes while writers run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if _, err := r.WriteTo(&sb); err != nil {
				t.Errorf("WriteTo: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
	var labeledTotal uint64
	for _, w := range []string{"a", "b", "c", "d"} {
		labeledTotal += cv.With(w).Value()
	}
	if labeledTotal != goroutines*perG*2 {
		t.Fatalf("labeled counters sum = %d, want %d", labeledTotal, goroutines*perG*2)
	}
	// Bucket counts must sum to the observation count.
	var bucketSum uint64
	for i := range h.counts {
		bucketSum += h.counts[i].Load()
	}
	if bucketSum != h.Count() {
		t.Fatalf("bucket sum %d != count %d", bucketSum, h.Count())
	}
}

// TestGetOrCreateSharing verifies two registrations of the same family
// return the same instrument, and that shape conflicts panic.
func TestGetOrCreateSharing(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("shared_total", "x")
	b := r.Counter("shared_total", "x")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("shared counter not shared")
	}
	h1 := StageLatency(r).With(StageTranslate)
	h2 := StageLatency(r).With(StageTranslate)
	if h1 != h2 {
		t.Fatal("same labels returned distinct histograms")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	r.Gauge("shared_total", "x")
}

// TestNilRegistrySafe exercises every instrument path on a nil registry.
func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Counter("a", "").Inc()
	r.Gauge("b", "").Set(1)
	r.Histogram("c", "", LatencyBuckets).Observe(1)
	r.CounterVec("d", "", "l").With("x").Add(3)
	r.GaugeVec("e", "", "l").With("x").Add(1)
	r.HistogramVec("f", "", BatchBuckets, "l").With("x").Observe(2)
	r.Collect(func(e *Emitter) {})
	ObserveSince(nil, time.Now().UnixNano())
	var sb strings.Builder
	if n, err := r.WriteTo(&sb); n != 0 || err != nil {
		t.Fatalf("nil WriteTo = (%d, %v)", n, err)
	}
}

// TestExpositionGolden pins the text format and round-trips it through
// the minimal parser.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_requests_total", "Requests served.").Add(42)
	r.Gauge("app_depth", "Queue depth.").Set(3.5)
	h := r.Histogram("app_wait_seconds", "Wait time.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.CounterVec("app_errs_total", "Errors.", "kind").With(`we"ird\x` + "\n").Add(7)
	r.Collect(func(e *Emitter) {
		e.Gauge("app_lag", "Per-peer lag.", 12, "peer", "n1")
		e.Gauge("app_lag", "Per-peer lag.", 0.25, "peer", "n2")
		e.Counter("app_scrapes_total", "", 1)
	})

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	want := `# HELP app_depth Queue depth.
# TYPE app_depth gauge
app_depth 3.5
# HELP app_errs_total Errors.
# TYPE app_errs_total counter
app_errs_total{kind="we\"ird\\x\n"} 7
# HELP app_lag Per-peer lag.
# TYPE app_lag gauge
app_lag{peer="n1"} 12
app_lag{peer="n2"} 0.25
# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total 42
# TYPE app_scrapes_total counter
app_scrapes_total 1
# HELP app_wait_seconds Wait time.
# TYPE app_wait_seconds histogram
app_wait_seconds_bucket{le="0.1"} 1
app_wait_seconds_bucket{le="1"} 2
app_wait_seconds_bucket{le="+Inf"} 3
app_wait_seconds_sum 5.55
app_wait_seconds_count 3
`
	if text != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", text, want)
	}

	sc, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("own exposition does not parse: %v", err)
	}
	if v, ok := sc.Value("app_requests_total"); !ok || v != 42 {
		t.Fatalf("parsed app_requests_total = %v, %v", v, ok)
	}
	if v, ok := sc.Value("app_errs_total", "kind", `we"ird\x`+"\n"); !ok || v != 7 {
		t.Fatalf("escaped label did not round-trip: %v %v", v, ok)
	}
	if v, ok := sc.Value("app_wait_seconds_bucket", "le", "+Inf"); !ok || v != 3 {
		t.Fatalf("+Inf bucket = %v, %v", v, ok)
	}
	if v, ok := sc.Value("app_lag", "peer", "n2"); !ok || v != 0.25 {
		t.Fatalf("collector sample = %v, %v", v, ok)
	}
	if sc.Types["app_wait_seconds"] != "histogram" {
		t.Fatalf("TYPE app_wait_seconds = %q", sc.Types["app_wait_seconds"])
	}
	fams := sc.Families()
	wantFams := []string{"app_depth", "app_errs_total", "app_lag", "app_requests_total", "app_scrapes_total", "app_wait_seconds"}
	if len(fams) != len(wantFams) {
		t.Fatalf("families = %v, want %v", fams, wantFams)
	}
	for i := range fams {
		if fams[i] != wantFams[i] {
			t.Fatalf("families = %v, want %v", fams, wantFams)
		}
	}
}

// TestParseTextRejectsGarbage ensures the parser actually validates.
func TestParseTextRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_value_here\n",
		"name{unclosed=\"x\n",
		"name 12 this is not a timestamp extra\n",
		"3name 1\n",
		"# TYPE x flurble\n",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText accepted %q", bad)
		}
	}
}

// TestObserveSince clamps negative skew and skips untraced frames.
func TestObserveSince(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("skew_seconds", "", LatencyBuckets)
	ObserveSince(h, 0)
	if h.Count() != 0 {
		t.Fatal("untraced frame observed")
	}
	ObserveSince(h, time.Now().Add(time.Hour).UnixNano()) // future capture: skewed clock
	if h.Count() != 1 {
		t.Fatal("skewed observation dropped")
	}
	if s := h.Sum(); s != 0 {
		t.Fatalf("skewed observation not clamped: sum=%v", s)
	}
	ObserveSince(h, time.Now().Add(-10*time.Millisecond).UnixNano())
	if h.Count() != 2 || h.Sum() <= 0 {
		t.Fatalf("normal observation missing: count=%d sum=%v", h.Count(), h.Sum())
	}
}

// TestMuxEndpoints exercises the shared HTTP wiring: /stats, /metrics,
// /healthz, /readyz, and the opt-in pprof mount.
func TestMuxEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("mux_hits_total", "").Add(9)
	ready := true
	mux := NewMux(MuxOptions{
		Registry: r,
		Stats:    func() any { return map[string]int{"frames": 5} },
		Ready: func() error {
			if !ready {
				return errTest
			}
			return nil
		},
		PProf: true,
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/stats"); code != 200 || !strings.Contains(body, `"frames":5`) {
		t.Fatalf("/stats = %d %q", code, body)
	}
	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	sc, err := ParseText(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	if v, ok := sc.Value("mux_hits_total"); !ok || v != 9 {
		t.Fatalf("mux_hits_total = %v %v", v, ok)
	}
	if code, _ := get("/healthz"); code != 200 {
		t.Fatalf("/healthz = %d", code)
	}
	if code, _ := get("/readyz"); code != 200 {
		t.Fatalf("/readyz = %d", code)
	}
	ready = false
	if code, body := get("/readyz"); code != 503 || !strings.Contains(body, "not ready") {
		t.Fatalf("unready /readyz = %d %q", code, body)
	}
	if code, body := get("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

var errTest = errTestType{}

type errTestType struct{}

func (errTestType) Error() string { return "not ready" }

// TestGaugeMath covers Add/Set and special values surviving exposition.
func TestGaugeMath(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("math_gauge", "")
	g.Set(1.5)
	g.Add(-0.5)
	if g.Value() != 1 {
		t.Fatalf("gauge = %v", g.Value())
	}
	g.Set(math.Inf(1))
	var sb strings.Builder
	_, _ = r.WriteTo(&sb)
	if !strings.Contains(sb.String(), "math_gauge +Inf") {
		t.Fatalf("Inf formatting: %q", sb.String())
	}
	sc, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := sc.Value("math_gauge"); !math.IsInf(v, 1) {
		t.Fatalf("parsed Inf = %v", v)
	}
}
