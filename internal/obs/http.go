package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// MuxOptions configures the shared stats/metrics/health HTTP wiring every
// ProvLight daemon mounts on its stats listener.
type MuxOptions struct {
	// Registry backs GET /metrics (Prometheus text exposition). Nil
	// omits the endpoint.
	Registry *Registry
	// Stats, when set, backs GET /stats with its JSON-encoded result —
	// the pre-existing per-daemon snapshot document.
	Stats func() any
	// Ready, when set, backs GET /readyz: nil error is ready (200),
	// non-nil is not (503, message in the body). Omitted when nil —
	// /healthz (pure liveness) is always mounted.
	Ready func() error
	// PProf mounts net/http/pprof under /debug/pprof/ (opt-in: profiling
	// endpoints expose heap contents and must not be on by default).
	PProf bool
}

// MetricsHandler serves r in Prometheus text exposition format.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = r.WriteTo(w)
	})
}

// StatsHandler serves payload() as JSON.
func StatsHandler(payload func() any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(payload())
	})
}

// HealthHandler is the shared liveness probe.
func HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"ok":true}` + "\n"))
	})
}

// Attach mounts the selected endpoints on mux. Daemons with their own
// API mux (dfanalyzer-server) call this directly; standalone stats
// listeners use NewMux.
func Attach(mux *http.ServeMux, o MuxOptions) {
	if o.Stats != nil {
		mux.Handle("/stats", StatsHandler(o.Stats))
	}
	if o.Registry != nil {
		mux.Handle("/metrics", MetricsHandler(o.Registry))
	}
	mux.Handle("/healthz", HealthHandler())
	if o.Ready != nil {
		ready := o.Ready
		mux.HandleFunc("/readyz", func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := ready(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				_ = json.NewEncoder(w).Encode(map[string]any{"ready": false, "reason": err.Error()})
				return
			}
			_, _ = w.Write([]byte(`{"ready":true}` + "\n"))
		})
	}
	if o.PProf {
		AttachPProf(mux)
	}
}

// AttachPProf mounts net/http/pprof on mux. Exported separately for
// daemons (dfanalyzer-server) that own their mux and only want the
// profiling endpoints from this package.
func AttachPProf(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// NewMux returns a fresh mux with the selected endpoints mounted.
func NewMux(o MuxOptions) *http.ServeMux {
	mux := http.NewServeMux()
	Attach(mux, o)
	return mux
}

// Serve binds listen and serves mux on it in the background. The bind
// happens synchronously so misconfiguration fails at startup, not in a
// goroutine's log line. Returns the bound address and a stop func.
func Serve(listen string, mux http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
