// Command metricscheck is the CI smoke checker for /metrics endpoints:
// it fetches a Prometheus text exposition, validates that every line
// parses (obs.ParseText rejects anything malformed), asserts the given
// metric families are present, and optionally writes the raw snapshot
// to a file for artifact upload. It polls until -timeout so it doubles
// as a readiness wait for freshly started daemons.
//
// Usage:
//
//	metricscheck -url http://127.0.0.1:9200/metrics \
//	    [-out snapshot.prom] [-timeout 30s] family [family...]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"github.com/provlight/provlight/internal/obs"
)

func main() {
	url := flag.String("url", "", "metrics endpoint to scrape")
	out := flag.String("out", "", "write the raw scraped exposition to this file")
	timeout := flag.Duration("timeout", 30*time.Second, "keep retrying the scrape until this deadline")
	flag.Parse()
	if *url == "" {
		fmt.Fprintln(os.Stderr, "metricscheck: -url is required")
		os.Exit(2)
	}
	families := flag.Args()

	deadline := time.Now().Add(*timeout)
	var lastErr error
	for {
		body, err := check(*url, families)
		if err == nil {
			if *out != "" {
				if werr := os.WriteFile(*out, body, 0o644); werr != nil {
					fmt.Fprintf(os.Stderr, "metricscheck: %v\n", werr)
					os.Exit(1)
				}
			}
			fmt.Printf("metricscheck: %s ok (%d bytes, %d families required)\n", *url, len(body), len(families))
			return
		}
		lastErr = err
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "metricscheck: %s: %v\n", *url, lastErr)
			os.Exit(1)
		}
		time.Sleep(250 * time.Millisecond)
	}
}

// check scrapes url once, requiring a parseable exposition containing
// every family. Returns the raw body on success.
func check(url string, families []string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	sc, err := obs.ParseText(bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("exposition does not parse: %w", err)
	}
	for _, f := range families {
		if !sc.Has(f) {
			return nil, fmt.Errorf("family %q missing (have %d samples)", f, len(sc.Samples))
		}
	}
	return body, nil
}
