package broker

import (
	"sort"
	"strings"

	"github.com/provlight/provlight/internal/mqttsn"
)

// Consumer groups (MQTT-SN shared subscriptions): a subscribe to
// "$share/<group>/<filter>" joins the consumer group (group, filter)
// instead of creating an individual subscription. The broker routes each
// message matching the filter to exactly ONE live member, chosen by a
// sticky partition assignment: a topic is assigned on first traffic to
// the member owning the fewest topics (equal-rate workflows spread
// evenly) and stays with that member while it lives, so a group of
// translator sessions splits the fan-in horizontally while one
// publisher's stream (one workflow's topic) stays on one member and
// keeps its order.
//
// Rebalance: a member's death (clean disconnect, keepalive expiry,
// reconnect replacement) or persistent unresponsiveness releases its
// partitions; survivors take them over lazily, least-loaded first.
// Frames queued or in flight to a dead member are handed back to the
// group (rerouted, in the dead member's send order) rather than dropped;
// frames a dead member received but never acknowledged may be delivered
// again to their new member, so delivery across a failover is
// at-least-once even at QoS 2 (exactly-once holds per member, and for
// the group while membership is stable).

// consumerGroup is one (group name, topic filter) consumer group. All
// fields are guarded by the broker's groupMu.
type consumerGroup struct {
	name   string
	filter string // inner filter ($share prefix stripped)
	// members in join order.
	members []groupMember
	// assign is the sticky partition table: topic -> owning member.
	// A topic is assigned on its first routed frame to the live member
	// owning the fewest topics (so equal-rate workflows spread evenly),
	// and stays put while its owner lives — that is the per-workflow
	// ordering guarantee. Only a dead member's topics are reassigned.
	assign map[string]*session
	// counts tracks how many topics each member owns, for least-loaded
	// assignment.
	counts map[*session]int
}

// groupMember is one session's membership, with its granted QoS.
type groupMember struct {
	s   *session
	qos mqttsn.QoS
}

// groupKey identifies a consumer group in the registry: the same group
// name with two different filters forms two independent groups (MQTT 5
// shared-subscription semantics).
func groupKey(name, filter string) string { return name + "\x00" + filter }

// joinGroup adds (or updates) s as a member of group (name, filter),
// creating the group on first join. It returns the group so the session
// can remember its memberships for teardown.
func (b *Broker) joinGroup(name, filter string, s *session, qos mqttsn.QoS) *consumerGroup {
	key := groupKey(name, filter)
	b.groupMu.Lock()
	defer b.groupMu.Unlock()
	g := b.groups[key]
	if g == nil {
		g = &consumerGroup{
			name: name, filter: filter,
			assign: map[string]*session{},
			counts: map[*session]int{},
		}
		b.groups[key] = g
	}
	for i := range g.members {
		if g.members[i].s == s {
			g.members[i].qos = qos // re-subscribe updates the granted QoS
			return g
		}
	}
	g.members = append(g.members, groupMember{s: s, qos: qos})
	g.counts[s] = 0
	return g
}

// leaveGroup removes s from g — releasing its partition assignments for
// lazy takeover by the survivors — and deletes the group when its last
// member leaves. It returns the number of remaining members.
func (b *Broker) leaveGroup(g *consumerGroup, s *session) int {
	b.groupMu.Lock()
	defer b.groupMu.Unlock()
	for i := range g.members {
		if g.members[i].s == s {
			g.members = append(g.members[:i], g.members[i+1:]...)
			break
		}
	}
	for topic, owner := range g.assign {
		if owner == s {
			delete(g.assign, topic)
		}
	}
	delete(g.counts, s)
	n := len(g.members)
	if n == 0 {
		delete(b.groups, groupKey(g.name, g.filter))
	}
	return n
}

// groupTarget is one routing decision: deliver msg to member s at qos on
// behalf of group g.
type groupTarget struct {
	s   *session
	qos mqttsn.QoS
	g   *consumerGroup
}

// matchGroups returns, for every group whose filter matches topic, the
// member the topic is assigned to. The steady state (topic already
// assigned to a live owner) runs under the read lock; only first-seen
// topics and takeovers upgrade to the write lock. exclude skips a member
// (used when handing a dead member's frames back to the group).
func (b *Broker) matchGroups(topic string, exclude *session, out []groupTarget) []groupTarget {
	b.groupMu.RLock()
	var misses []*consumerGroup
	for _, g := range b.groups {
		if !mqttsn.TopicMatches(g.filter, topic) {
			continue
		}
		if m, ok := g.lookupAssigned(topic, exclude); ok {
			out = append(out, groupTarget{s: m.s, qos: m.qos, g: g})
		} else {
			misses = append(misses, g)
		}
	}
	b.groupMu.RUnlock()
	for _, g := range misses {
		b.groupMu.Lock()
		if m, ok := g.assignTopic(topic, exclude); ok {
			out = append(out, groupTarget{s: m.s, qos: m.qos, g: g})
		}
		b.groupMu.Unlock()
	}
	return out
}

// lookupAssigned resolves topic's owning member if it is assigned, live,
// and not excluded. Callers hold groupMu (read suffices).
func (g *consumerGroup) lookupAssigned(topic string, exclude *session) (groupMember, bool) {
	owner := g.assign[topic]
	if owner == nil || owner == exclude {
		return groupMember{}, false
	}
	for _, m := range g.members {
		if m.s == owner {
			return m, true
		}
	}
	return groupMember{}, false
}

// assignTopic resolves or creates topic's sticky assignment: the live,
// non-excluded member owning the fewest topics takes it. Callers hold
// groupMu for writing.
func (g *consumerGroup) assignTopic(topic string, exclude *session) (groupMember, bool) {
	if m, ok := g.lookupAssigned(topic, exclude); ok {
		return m, true // raced with a concurrent assignment
	}
	best := -1
	for i, m := range g.members {
		if m.s == exclude {
			continue
		}
		if best < 0 || g.counts[m.s] < g.counts[g.members[best].s] {
			best = i
		}
	}
	if best < 0 {
		return groupMember{}, false
	}
	m := g.members[best]
	if prev := g.assign[topic]; prev != nil {
		// Takeover from an excluded-but-live owner (an owner that died
		// has already been stripped by leaveGroup).
		if _, ok := g.counts[prev]; ok {
			g.counts[prev]--
		}
	}
	g.assign[topic] = m.s
	g.counts[m.s]++
	return m, true
}

// rerouteGroup hands a group-routed message back to its group after its
// member died or gave up on it, excluding that member. Ownership of msg
// transfers: it is either delivered to another member or released and
// counted as dropped. Must be called without any shard mutex held.
//
// The loop is bounded: every iteration whose pick fails the liveness
// check removes that member from the group (it is gone from its shard
// map, so it is definitively dead — several members can be in this state
// at once when a sweep expires them in one batch), so after at most
// len(members) iterations the frame is delivered or given up.
func (b *Broker) rerouteGroup(msg *message, from *session) {
	g := msg.group
	for {
		var pick [1]groupTarget
		targets := b.matchGroupOne(g, msg.topic, from, pick[:0])
		if len(targets) == 0 {
			b.ctr.deliveryGiveUps.Add(1)
			b.putMsg(msg)
			return
		}
		t := targets[0]
		if msg.qos > t.qos {
			msg.qos = t.qos
		}
		if b.deliver(t.s, msg) {
			b.ctr.groupRerouted.Add(1)
			return
		}
		// The picked member died between pick and deliver (deliver
		// returned ownership of msg): drop it from the group so it
		// cannot be picked again, then try the survivors.
		b.leaveGroup(g, t.s)
		from = t.s
	}
}

// settleUndeliverable settles a frame its subscriber will never take
// (MaxRetries spent, or a rejected/abandoned REGISTER): group frames are
// handed back to the group excluding that subscriber, the rest are
// dropped and counted. Must be called without any shard mutex held.
func (b *Broker) settleUndeliverable(s *session, msg *message) {
	if msg.group != nil {
		b.rerouteGroup(msg, s)
		return
	}
	b.ctr.deliveryGiveUps.Add(1)
	b.putMsg(msg)
}

// matchGroupOne is matchGroups for a single known group (the message
// already carries its group affiliation). It always takes the write lock:
// handoff reassigns the topic away from the failed member.
func (b *Broker) matchGroupOne(g *consumerGroup, topic string, exclude *session, out []groupTarget) []groupTarget {
	b.groupMu.Lock()
	defer b.groupMu.Unlock()
	if m, ok := g.assignTopic(topic, exclude); ok {
		out = append(out, groupTarget{s: m.s, qos: m.qos, g: g})
	}
	return out
}

// sessionRemains collects everything a dying session still owes: its
// QoS 1/2 backlog and in-flight frames (for group handoff or release),
// its group memberships (to leave), and its individual filters (so the
// OnUnsubscribe hook sees teardown like an explicit unsubscribe).
// Populated under the session's shard mutex, acted on after unlocking.
type sessionRemains struct {
	msgs    []*message // in dead-member send order
	groups  []*consumerGroup
	filters []string // individual filters of a non-bridge session
}

// collectRemainsLocked strips s of its undelivered frames and group
// memberships. Callers must hold the session's shard mutex; the returned
// remains must be settled with settleRemains after unlocking.
func (b *Broker) collectRemainsLocked(s *session) sessionRemains {
	var r sessionRemains
	// In-flight frames first (they were enqueued before the backlog),
	// in enqueue order.
	if len(s.outbound) > 0 {
		obs := make([]*outbound, 0, len(s.outbound))
		for _, ob := range s.outbound {
			obs = append(obs, ob)
		}
		sort.Slice(obs, func(i, j int) bool { return obs[i].seq < obs[j].seq })
		for _, ob := range obs {
			r.msgs = append(r.msgs, ob.msg)
			ob.msg = nil
			b.putOutbound(ob)
		}
		s.outbound = map[uint16]*outbound{}
	}
	for _, m := range s.sendQ {
		r.msgs = append(r.msgs, m)
	}
	s.sendQ = nil
	for id, pending := range s.pendingReg {
		r.msgs = append(r.msgs, pending...)
		delete(s.pendingReg, id)
	}
	s.regFlows = nil
	// Pending inbound QoS 2 state: publishes whose PUBREL never arrived
	// die with the session (the publisher's retransmissions will fail its
	// own flow); free them so churn cannot accumulate held frames.
	for id, m := range s.inbound2 {
		delete(s.inbound2, id)
		b.putMsg(m)
	}
	for seq, m := range s.held {
		delete(s.held, seq)
		b.putMsg(m)
	}
	for _, g := range s.groupSubs {
		r.groups = append(r.groups, g)
	}
	s.groupSubs = nil
	if b.cfg.OnUnsubscribe != nil && !strings.HasPrefix(s.clientID, BridgeSessionPrefix) {
		for filter := range s.subs {
			r.filters = append(r.filters, filter)
		}
	}
	s.subs = map[string]mqttsn.QoS{}
	return r
}

// settleRemains leaves the dead session's groups, then re-routes its
// group-owned frames to surviving members and releases the rest. Must be
// called WITHOUT any shard mutex held (re-delivery locks other shards).
func (b *Broker) settleRemains(s *session, r sessionRemains) {
	for _, g := range r.groups {
		b.leaveGroup(g, s)
	}
	for _, filter := range r.filters {
		b.cfg.OnUnsubscribe(filter)
	}
	for _, m := range r.msgs {
		if m.group != nil {
			b.rerouteGroup(m, s)
		} else {
			b.ctr.backlogDropped.Add(1)
			b.putMsg(m)
		}
	}
}
