package broker

import (
	"errors"
	"testing"
	"time"

	"github.com/provlight/provlight/internal/mqttsn"
)

func dialRaw(t *testing.T, b *Broker, id string) *mqttsn.Client {
	t.Helper()
	c, err := mqttsn.NewClient(mqttsn.ClientConfig{
		ClientID:      id,
		Gateway:       b.Addr(),
		KeepAlive:     5 * time.Second,
		RetryInterval: 150 * time.Millisecond,
		MaxRetries:    10,
		CleanSession:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestAdmissionSessionCap(t *testing.T) {
	b, err := New(Config{Addr: "127.0.0.1:0", RetryInterval: 150 * time.Millisecond, MaxSessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)

	for i, id := range []string{"cap-a", "cap-b"} {
		if err := dialRaw(t, b, id).Connect(); err != nil {
			t.Fatalf("connect %d: %v", i, err)
		}
	}
	// A third, new client id is over the cap: congestion rejection.
	if err := dialRaw(t, b, "cap-c").Connect(); !errors.Is(err, mqttsn.ErrCongestion) {
		t.Fatalf("over-cap connect err = %v, want ErrCongestion", err)
	}
	// A reconnect of an existing id replaces its session and must be
	// admitted even at the cap.
	if err := dialRaw(t, b, "cap-a").Connect(); err != nil {
		t.Fatalf("reconnect at cap: %v", err)
	}
	if got := b.Stats().CongestionRejected; got != 1 {
		t.Fatalf("CongestionRejected = %d, want 1", got)
	}
}

func TestAdmissionConnectRate(t *testing.T) {
	// Burst of 2, refilling far too slowly to matter inside the test.
	b, err := New(Config{Addr: "127.0.0.1:0", RetryInterval: 150 * time.Millisecond, ConnectRate: 0.001, ConnectBurst: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)

	accepted, rejected := 0, 0
	for i := 0; i < 5; i++ {
		err := dialRaw(t, b, "rate-"+string(rune('a'+i))).Connect()
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, mqttsn.ErrCongestion):
			rejected++
		default:
			t.Fatalf("connect %d: %v", i, err)
		}
	}
	if accepted != 2 || rejected != 3 {
		t.Fatalf("accepted=%d rejected=%d, want 2/3", accepted, rejected)
	}
	if got := b.Stats().CongestionRejected; got != 3 {
		t.Fatalf("CongestionRejected = %d, want 3", got)
	}
}
