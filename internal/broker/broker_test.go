package broker

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/provlight/provlight/internal/mqttsn"
	"github.com/provlight/provlight/internal/netem"
)

func newTestBroker(t *testing.T) *Broker {
	t.Helper()
	b, err := New(Config{Addr: "127.0.0.1:0", RetryInterval: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	return b
}

func newTestClient(t *testing.T, b *Broker, id string) *mqttsn.Client {
	t.Helper()
	c, err := mqttsn.NewClient(mqttsn.ClientConfig{
		ClientID:      id,
		Gateway:       b.Addr(),
		KeepAlive:     5 * time.Second,
		RetryInterval: 150 * time.Millisecond,
		MaxRetries:    10,
		CleanSession:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.Connect(); err != nil {
		t.Fatalf("connect %s: %v", id, err)
	}
	return c
}

// collect subscribes and returns a channel of received payload strings.
func collect(t *testing.T, c *mqttsn.Client, filter string, qos mqttsn.QoS) <-chan string {
	t.Helper()
	ch := make(chan string, 256)
	err := c.Subscribe(filter, qos, func(topic string, payload []byte) {
		ch <- string(payload)
	})
	if err != nil {
		t.Fatalf("subscribe %s: %v", filter, err)
	}
	return ch
}

func waitFor(t *testing.T, ch <-chan string, want string) {
	t.Helper()
	select {
	case got := <-ch:
		if got != want {
			t.Fatalf("received %q, want %q", got, want)
		}
	case <-time.After(3 * time.Second):
		t.Fatalf("timed out waiting for %q", want)
	}
}

func TestPublishSubscribeQoS0(t *testing.T) {
	b := newTestBroker(t)
	pub := newTestClient(t, b, "pub0")
	sub := newTestClient(t, b, "sub0")
	ch := collect(t, sub, "sensors/temp", mqttsn.QoS0)
	if err := pub.Publish("sensors/temp", []byte("21.5"), mqttsn.QoS0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, ch, "21.5")
}

func TestPublishSubscribeQoS1(t *testing.T) {
	b := newTestBroker(t)
	pub := newTestClient(t, b, "pub1")
	sub := newTestClient(t, b, "sub1")
	ch := collect(t, sub, "a/b", mqttsn.QoS1)
	if err := pub.Publish("a/b", []byte("hello"), mqttsn.QoS1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, ch, "hello")
}

func TestPublishSubscribeQoS2(t *testing.T) {
	b := newTestBroker(t)
	pub := newTestClient(t, b, "pub2")
	sub := newTestClient(t, b, "sub2")
	ch := collect(t, sub, "prov/records", mqttsn.QoS2)
	for i := 0; i < 10; i++ {
		if err := pub.Publish("prov/records", []byte(fmt.Sprintf("m%d", i)), mqttsn.QoS2); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		waitFor(t, ch, fmt.Sprintf("m%d", i))
	}
	select {
	case extra := <-ch:
		t.Fatalf("unexpected extra message %q", extra)
	case <-time.After(300 * time.Millisecond):
	}
}

func TestQoS2ExactlyOnceUnderLossAndDuplication(t *testing.T) {
	b := newTestBroker(t)
	sub := newTestClient(t, b, "sub-eo")

	var received sync.Map
	var dupes atomic.Int64
	err := sub.Subscribe("eo/topic", mqttsn.QoS2, func(topic string, payload []byte) {
		if _, loaded := received.LoadOrStore(string(payload), true); loaded {
			dupes.Add(1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	// Publisher over a lossy, duplicating link.
	raw, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lossy := netem.WrapPacketConn(raw, netem.Profile{LossRate: 0.25, DupRate: 0.25, Seed: 11})
	pub, err := mqttsn.NewClient(mqttsn.ClientConfig{
		ClientID:      "pub-eo",
		Gateway:       b.Addr(),
		Conn:          lossy,
		RetryInterval: 100 * time.Millisecond,
		MaxRetries:    30,
		CleanSession:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pub.Close)
	if err := pub.Connect(); err != nil {
		t.Fatal(err)
	}
	const n = 25
	for i := 0; i < n; i++ {
		if err := pub.Publish("eo/topic", []byte(fmt.Sprintf("msg-%d", i)), mqttsn.QoS2); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		count := 0
		received.Range(func(_, _ any) bool { count++; return true })
		if count == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d/%d unique messages", count, n)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if d := dupes.Load(); d != 0 {
		t.Errorf("QoS 2 delivered %d duplicates; exactly-once violated", d)
	}
}

func TestWildcardSubscriptionTriggersRegister(t *testing.T) {
	b := newTestBroker(t)
	sub := newTestClient(t, b, "sub-wild")
	ch := make(chan string, 16)
	err := sub.Subscribe("provlight/+/records", mqttsn.QoS1, func(topic string, payload []byte) {
		ch <- topic + "=" + string(payload)
	})
	if err != nil {
		t.Fatal(err)
	}
	pub := newTestClient(t, b, "pub-wild")
	if err := pub.Publish("provlight/dev42/records", []byte("x"), mqttsn.QoS1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, ch, "provlight/dev42/records=x")
}

func TestRetainedMessageDeliveredOnSubscribe(t *testing.T) {
	b := newTestBroker(t)
	pub := newTestClient(t, b, "pub-ret")
	// Publish retained via a raw QoS0 publish with the retain flag: the
	// client API doesn't expose retain, so drive the flow manually.
	id, err := pub.RegisterTopic("cfg/latest")
	if err != nil {
		t.Fatal(err)
	}
	_ = id
	// The mqttsn client has no retain knob; publish through a bare socket.
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	gw, _ := net.ResolveUDPAddr("udp", b.Addr())
	connect := &mqttsn.Connect{Flags: mqttsn.Flags{CleanSession: true}, Duration: 60, ClientID: "raw-ret"}
	conn.WriteTo(mqttsn.Marshal(connect), gw)
	time.Sleep(100 * time.Millisecond)
	reg := &mqttsn.Register{MsgID: 1, TopicName: "cfg/latest"}
	conn.WriteTo(mqttsn.Marshal(reg), gw)
	// Read REGACK to learn the topic id.
	buf := make([]byte, 1024)
	var topicID uint16
	deadline := time.Now().Add(2 * time.Second)
	for {
		conn.SetReadDeadline(deadline)
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			t.Fatal("no REGACK received")
		}
		pkt, err := mqttsn.Unmarshal(buf[:n])
		if err == nil {
			if ra, ok := pkt.(*mqttsn.Regack); ok {
				topicID = ra.TopicID
				break
			}
		}
	}
	pubPkt := &mqttsn.Publish{
		Flags:   mqttsn.Flags{QoS: mqttsn.QoS0, Retain: true},
		TopicID: topicID,
		Data:    []byte("retained-v1"),
	}
	conn.WriteTo(mqttsn.Marshal(pubPkt), gw)
	time.Sleep(200 * time.Millisecond)

	// A fresh subscriber must get the retained message immediately.
	sub := newTestClient(t, b, "sub-ret")
	ch := collect(t, sub, "cfg/latest", mqttsn.QoS1)
	waitFor(t, ch, "retained-v1")
}

func TestWillPublishedOnSessionExpiry(t *testing.T) {
	b := newTestBroker(t)
	sub := newTestClient(t, b, "sub-will")
	ch := collect(t, sub, "devices/+/status", mqttsn.QoS1)

	dying, err := mqttsn.NewClient(mqttsn.ClientConfig{
		ClientID:      "edge-dying",
		Gateway:       b.Addr(),
		KeepAlive:     time.Second, // expires after ~1.5s without traffic
		RetryInterval: 100 * time.Millisecond,
		MaxRetries:    10,
		CleanSession:  true,
		Will: &mqttsn.Will{
			Topic:   "devices/edge-dying/status",
			Payload: []byte("lost"),
			QoS:     mqttsn.QoS1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := dying.Connect(); err != nil {
		t.Fatal(err)
	}
	// Kill the client without DISCONNECT: the broker must publish the will.
	dying.Close()
	waitFor(t, ch, "lost")
}

func TestCleanDisconnectSuppressesWill(t *testing.T) {
	b := newTestBroker(t)
	sub := newTestClient(t, b, "sub-nw")
	ch := collect(t, sub, "devices/+/status", mqttsn.QoS1)

	leaving, err := mqttsn.NewClient(mqttsn.ClientConfig{
		ClientID:      "edge-leaving",
		Gateway:       b.Addr(),
		KeepAlive:     time.Second,
		RetryInterval: 100 * time.Millisecond,
		CleanSession:  true,
		Will: &mqttsn.Will{
			Topic:   "devices/edge-leaving/status",
			Payload: []byte("lost"),
			QoS:     mqttsn.QoS1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := leaving.Connect(); err != nil {
		t.Fatal(err)
	}
	if err := leaving.Disconnect(); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-ch:
		t.Fatalf("will %q published despite clean disconnect", got)
	case <-time.After(2 * time.Second):
	}
}

func TestMultipleSubscribersAllReceive(t *testing.T) {
	b := newTestBroker(t)
	pub := newTestClient(t, b, "pub-multi")
	var chans []<-chan string
	for i := 0; i < 5; i++ {
		sub := newTestClient(t, b, fmt.Sprintf("sub-multi-%d", i))
		chans = append(chans, collect(t, sub, "fan/out", mqttsn.QoS1))
	}
	if err := pub.Publish("fan/out", []byte("boom"), mqttsn.QoS1); err != nil {
		t.Fatal(err)
	}
	for i, ch := range chans {
		select {
		case got := <-ch:
			if got != "boom" {
				t.Errorf("subscriber %d got %q", i, got)
			}
		case <-time.After(3 * time.Second):
			t.Fatalf("subscriber %d timed out", i)
		}
	}
}

func TestPingAndKeepalive(t *testing.T) {
	b := newTestBroker(t)
	c := newTestClient(t, b, "pinger")
	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	b := newTestBroker(t)
	pub := newTestClient(t, b, "pub-u")
	sub := newTestClient(t, b, "sub-u")
	ch := collect(t, sub, "u/t", mqttsn.QoS1)
	if err := pub.Publish("u/t", []byte("one"), mqttsn.QoS1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, ch, "one")
	if err := sub.Unsubscribe("u/t"); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("u/t", []byte("two"), mqttsn.QoS1); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-ch:
		t.Fatalf("received %q after unsubscribe", got)
	case <-time.After(500 * time.Millisecond):
	}
}

func TestManyParallelPublishers(t *testing.T) {
	// Scalability smoke test mirroring Table IX: devices publishing to
	// per-device topics in parallel.
	b := newTestBroker(t)
	sub := newTestClient(t, b, "translator")
	var count atomic.Int64
	if err := sub.Subscribe("provlight/+/records", mqttsn.QoS1, func(string, []byte) {
		count.Add(1)
	}); err != nil {
		t.Fatal(err)
	}
	const devices = 16
	const msgs = 5
	var wg sync.WaitGroup
	for d := 0; d < devices; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			c := newTestClient(t, b, fmt.Sprintf("device-%d", d))
			topic := fmt.Sprintf("provlight/device-%d/records", d)
			for i := 0; i < msgs; i++ {
				if err := c.Publish(topic, []byte(fmt.Sprintf("%d-%d", d, i)), mqttsn.QoS1); err != nil {
					t.Errorf("device %d publish %d: %v", d, i, err)
					return
				}
			}
		}(d)
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for count.Load() < devices*msgs {
		if time.Now().After(deadline) {
			t.Fatalf("routed %d/%d messages", count.Load(), devices*msgs)
		}
		time.Sleep(50 * time.Millisecond)
	}
	st := b.Stats()
	if st.PublishesReceived < devices*msgs {
		t.Errorf("broker saw %d publishes, want >= %d", st.PublishesReceived, devices*msgs)
	}
}

func TestPublishToUnknownTopicIDRejected(t *testing.T) {
	b := newTestBroker(t)
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	gw, _ := net.ResolveUDPAddr("udp", b.Addr())
	connect := &mqttsn.Connect{Flags: mqttsn.Flags{CleanSession: true}, Duration: 60, ClientID: "raw-bad"}
	conn.WriteTo(mqttsn.Marshal(connect), gw)
	time.Sleep(100 * time.Millisecond)
	pub := &mqttsn.Publish{Flags: mqttsn.Flags{QoS: mqttsn.QoS1}, TopicID: 9999, MsgID: 7, Data: []byte("x")}
	conn.WriteTo(mqttsn.Marshal(pub), gw)
	buf := make([]byte, 256)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	for {
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			t.Fatal("no PUBACK rejection received")
		}
		pkt, err := mqttsn.Unmarshal(buf[:n])
		if err != nil {
			continue
		}
		if pa, ok := pkt.(*mqttsn.Puback); ok {
			if pa.ReturnCode != mqttsn.RejectedInvalidID {
				t.Fatalf("return code = %v, want invalid topic id", pa.ReturnCode)
			}
			return
		}
	}
}
