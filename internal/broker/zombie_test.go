package broker

import (
	"net"
	"testing"
	"time"

	"github.com/provlight/provlight/internal/mqttsn"
)

// TestPingFromExpiredSessionGetsDisconnect: a PINGREQ from an address the
// broker has no session for must be answered with DISCONNECT, not
// PINGRESP. Answering PINGRESP would keep a client whose session the
// janitor expired (its pings lost during an overload window) in a zombie
// state forever: pinging happily, subscribed to nothing.
func TestPingFromExpiredSessionGetsDisconnect(t *testing.T) {
	b, err := New(Config{Addr: "127.0.0.1:0", RetryInterval: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	gw, err := net.ResolveUDPAddr("udp", b.Addr())
	if err != nil {
		t.Fatal(err)
	}

	// No CONNECT first: this socket is exactly what an expired session
	// looks like to the broker.
	if _, err := pc.WriteTo(mqttsn.Marshal(&mqttsn.Pingreq{}), gw); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	if err := pc.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	n, _, err := pc.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := mqttsn.Unmarshal(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pkt.(*mqttsn.Disconnect); !ok {
		t.Fatalf("expected DISCONNECT for unknown session's ping, got %s", pkt.Type())
	}
}
