package broker

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/provlight/provlight/internal/mqttsn"
)

// memberRecorder is one consumer-group member recording every payload it
// receives, in arrival order.
type memberRecorder struct {
	c  *mqttsn.Client
	mu sync.Mutex
	by map[string][]string // topic -> payloads in arrival order
}

func newMember(t *testing.T, b *Broker, id, filter string, qos mqttsn.QoS) *memberRecorder {
	t.Helper()
	m := &memberRecorder{c: newTestClient(t, b, id), by: map[string][]string{}}
	if err := m.c.Subscribe(filter, qos, func(topic string, payload []byte) {
		m.mu.Lock()
		m.by[topic] = append(m.by[topic], string(payload))
		m.mu.Unlock()
	}); err != nil {
		t.Fatalf("subscribe %s: %v", id, err)
	}
	return m
}

func (m *memberRecorder) total() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, msgs := range m.by {
		n += len(msgs)
	}
	return n
}

// TestSharedSubscriptionPartitioning pins the consumer-group contract:
// across a stable group, every QoS 2 publish is delivered exactly once to
// exactly one member, all frames of one topic (one workflow) land on the
// same member, and each topic's frames arrive in publish order.
func TestSharedSubscriptionPartitioning(t *testing.T) {
	b := newTestBroker(t)
	const members = 3
	const topics = 8
	const perTopic = 10
	var ms []*memberRecorder
	for i := 0; i < members; i++ {
		ms = append(ms, newMember(t, b, fmt.Sprintf("member-%d", i), "$share/grp/wf/+/records", mqttsn.QoS2))
	}

	var wg sync.WaitGroup
	for w := 0; w < topics; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pub := newTestClient(t, b, fmt.Sprintf("wf-pub-%d", w))
			topic := fmt.Sprintf("wf/%d/records", w)
			for i := 0; i < perTopic; i++ {
				if err := pub.Publish(topic, []byte(fmt.Sprintf("%d", i)), mqttsn.QoS2); err != nil {
					t.Errorf("publish %s #%d: %v", topic, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	want := topics * perTopic
	deadline := time.Now().Add(10 * time.Second)
	for {
		got := 0
		for _, m := range ms {
			got += m.total()
		}
		if got >= want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("group received %d/%d messages", got, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Exactly once across the group, affine and ordered per topic.
	seenOn := map[string]int{}
	for mi, m := range ms {
		m.mu.Lock()
		for topic, msgs := range m.by {
			if prev, dup := seenOn[topic]; dup {
				t.Errorf("topic %s delivered to members %d and %d; affinity violated", topic, prev, mi)
			}
			seenOn[topic] = mi
			if len(msgs) != perTopic {
				t.Errorf("member %d got %d/%d frames of %s", mi, len(msgs), perTopic, topic)
			}
			for i, got := range msgs {
				if got != fmt.Sprintf("%d", i) {
					t.Errorf("member %d topic %s frame %d = %q; order violated", mi, topic, i, got)
					break
				}
			}
		}
		m.mu.Unlock()
	}
	if len(seenOn) != topics {
		t.Errorf("delivered topics = %d, want %d", len(seenOn), topics)
	}
	st := b.Stats()
	if st.Groups != 1 {
		t.Errorf("Stats.Groups = %d, want 1", st.Groups)
	}
	if st.DuplicatesDropped != 0 && st.MessagesRouted != uint64(want) {
		t.Logf("routed=%d dupdropped=%d", st.MessagesRouted, st.DuplicatesDropped)
	}
}

// TestGroupRebalanceReroutesBacklog kills a group member that stopped
// acknowledging and checks that its queued and in-flight frames are handed
// back to the group (GroupRerouted) instead of being dropped at
// MaxRetries, and that the survivor ends up with every frame.
func TestGroupRebalanceReroutesBacklog(t *testing.T) {
	b, err := New(Config{
		Addr:          "127.0.0.1:0",
		RetryInterval: 100 * time.Millisecond,
		MaxRetries:    2,
		SendWindow:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)

	// The survivor subscribes normally through a live client.
	survivor := newMember(t, b, "survivor", "$share/grp/wf/+/records", mqttsn.QoS1)

	// The dying member joins the group through a raw socket, subscribes,
	// then goes silent: it will never REGACK or PUBACK, so everything the
	// broker routes to it must eventually be handed back to the group.
	raw, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	gw, _ := net.ResolveUDPAddr("udp", b.Addr())
	raw.WriteTo(mqttsn.Marshal(&mqttsn.Connect{Flags: mqttsn.Flags{CleanSession: true}, Duration: 1, ClientID: "deadman"}), gw)
	time.Sleep(100 * time.Millisecond)
	raw.WriteTo(mqttsn.Marshal(&mqttsn.Subscribe{Flags: mqttsn.Flags{QoS: mqttsn.QoS1}, MsgID: 1, TopicName: "$share/grp/wf/+/records"}), gw)
	time.Sleep(100 * time.Millisecond)
	if got := b.Stats().Sessions; got != 2 {
		t.Fatalf("sessions = %d, want 2 (survivor + deadman)", got)
	}

	// Publish on many topics so some hash to the dead member.
	pub := newTestClient(t, b, "pub-rb")
	const topics = 12
	for w := 0; w < topics; w++ {
		topic := fmt.Sprintf("wf/%d/records", w)
		for i := 0; i < 2; i++ {
			if err := pub.Publish(topic, []byte(fmt.Sprintf("%d", i)), mqttsn.QoS1); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Every frame must eventually reach the survivor: frames routed to the
	// dead member are re-routed when it gives up at MaxRetries or when its
	// keepalive (1 s) expires.
	want := topics * 2
	deadline := time.Now().Add(15 * time.Second)
	for survivor.total() < want {
		if time.Now().After(deadline) {
			st := b.Stats()
			t.Fatalf("survivor received %d/%d frames (stats %+v)", survivor.total(), want, st)
		}
		time.Sleep(50 * time.Millisecond)
	}
	st := b.Stats()
	if st.GroupRerouted == 0 {
		t.Errorf("GroupRerouted = 0, want > 0 (dead member's frames must be handed back)")
	}
	if st.DeliveryGiveUps != 0 {
		t.Errorf("DeliveryGiveUps = %d, want 0: group frames must be re-routed, not dropped", st.DeliveryGiveUps)
	}
}

// TestGiveUpAccountingForDeadSubscriber is the regression test for the
// backlog give-up accounting fix: frames abandoned at MaxRetries for an
// unresponsive individual (non-group) subscriber must be counted in
// Stats.DeliveryGiveUps / BacklogDropped instead of vanishing silently.
func TestGiveUpAccountingForDeadSubscriber(t *testing.T) {
	b, err := New(Config{
		Addr:          "127.0.0.1:0",
		RetryInterval: 80 * time.Millisecond,
		MaxRetries:    2,
		SendWindow:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)

	// Raw silent subscriber with a long keepalive (so expiry doesn't race
	// the give-up path) on an exact topic (no REGISTER roundtrip needed:
	// subscribing to an exact topic installs its id).
	raw, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	gw, _ := net.ResolveUDPAddr("udp", b.Addr())
	raw.WriteTo(mqttsn.Marshal(&mqttsn.Connect{Flags: mqttsn.Flags{CleanSession: true}, Duration: 600, ClientID: "silent"}), gw)
	time.Sleep(100 * time.Millisecond)
	raw.WriteTo(mqttsn.Marshal(&mqttsn.Subscribe{Flags: mqttsn.Flags{QoS: mqttsn.QoS1}, MsgID: 1, TopicName: "giveup/t"}), gw)
	time.Sleep(100 * time.Millisecond)

	pub := newTestClient(t, b, "pub-gu")
	const n = 6
	for i := 0; i < n; i++ {
		if err := pub.Publish("giveup/t", []byte{byte(i)}, mqttsn.QoS1); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := b.Stats(); st.DeliveryGiveUps >= n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("DeliveryGiveUps = %d, want >= %d (stats %+v)", b.Stats().DeliveryGiveUps, n, b.Stats())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestJanitorChurnReleasesGroupState exercises the sweep path under
// member churn: sessions join the group, receive traffic, and die without
// disconnecting. Expiry must release group membership, pending QoS 2
// state, and backlogged frames — the group registry ends empty and the
// remaining member keeps consuming.
func TestJanitorChurnReleasesGroupState(t *testing.T) {
	b, err := New(Config{
		Addr:          "127.0.0.1:0",
		RetryInterval: 80 * time.Millisecond,
		MaxRetries:    3,
		SendWindow:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)

	var received atomic.Int64
	stable := newTestClient(t, b, "stable-member")
	if err := stable.Subscribe("$share/churn/wf/+/records", mqttsn.QoS2, func(string, []byte) {
		received.Add(1)
	}); err != nil {
		t.Fatal(err)
	}

	pubDone := make(chan struct{})
	pub := newTestClient(t, b, "pub-churn")
	const total = 60
	go func() {
		defer close(pubDone)
		for i := 0; i < total; i++ {
			topic := fmt.Sprintf("wf/%d/records", i%6)
			if err := pub.Publish(topic, []byte{byte(i)}, mqttsn.QoS2); err != nil {
				t.Errorf("publish %d: %v", i, err)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Churn: short-keepalive members join and silently die mid-stream.
	for round := 0; round < 3; round++ {
		c, err := mqttsn.NewClient(mqttsn.ClientConfig{
			ClientID:      fmt.Sprintf("churn-%d", round),
			Gateway:       b.Addr(),
			KeepAlive:     time.Second,
			RetryInterval: 80 * time.Millisecond,
			MaxRetries:    5,
			CleanSession:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Connect(); err != nil {
			t.Fatal(err)
		}
		if err := c.Subscribe("$share/churn/wf/+/records", mqttsn.QoS2, func(string, []byte) {}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(60 * time.Millisecond)
		c.Close() // no DISCONNECT: only keepalive expiry reclaims it
	}
	<-pubDone

	// All churned members must expire and leave the group; only the
	// stable member remains, so the group keeps exactly one member and
	// later frames keep flowing to it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		b.groupMu.RLock()
		g := b.groups[groupKey("churn", "wf/+/records")]
		memberCount := -1
		if g != nil {
			memberCount = len(g.members)
		}
		b.groupMu.RUnlock()
		if memberCount == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("group members = %d, want 1 after churn expiry", memberCount)
		}
		time.Sleep(50 * time.Millisecond)
	}
	// Membership may drop before the keepalive does (give-up eviction);
	// the sessions themselves must still be reclaimed by expiry.
	deadline = time.Now().Add(10 * time.Second)
	for b.Stats().SessionsExpired < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("SessionsExpired = %d, want >= 3", b.Stats().SessionsExpired)
		}
		time.Sleep(50 * time.Millisecond)
	}
	// Post-churn traffic still reaches the stable member.
	before := received.Load()
	if err := pub.Publish("wf/0/records", []byte("after"), mqttsn.QoS2); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for received.Load() <= before {
		if time.Now().After(deadline) {
			t.Fatal("stable member stopped receiving after churn")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Unsubscribe dissolves the group entirely — no leaked registry entry.
	if err := stable.Unsubscribe("$share/churn/wf/+/records"); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(3 * time.Second)
	for {
		b.groupMu.RLock()
		_, exists := b.groups[groupKey("churn", "wf/+/records")]
		b.groupMu.RUnlock()
		if !exists {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("group registry entry leaked after last member left")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
