// Package broker implements an MQTT-SN gateway/broker over UDP: the Go
// equivalent of the Eclipse RSMB (Really Small Message Broker) that
// ProvLight's server side builds on (paper §IV-C1).
//
// Features: client sessions with keepalive expiry, topic registration with
// gateway-scoped 16-bit ids, exact and wildcard ('+', '#') subscriptions,
// QoS 0/1/2 inbound and outbound flows with exactly-once semantics at
// QoS 2, retained messages, and last-will publication when a session is
// lost. A janitor goroutine retransmits unacknowledged outbound messages
// and expires dead sessions.
package broker

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"github.com/provlight/provlight/internal/mqttsn"
)

// Config configures a broker.
type Config struct {
	// Addr is the UDP listen address (e.g. "127.0.0.1:1883"). Ignored if
	// Conn is set.
	Addr string
	// Conn optionally supplies a pre-made (possibly netem-shaped) socket.
	Conn net.PacketConn
	// RetryInterval is the outbound acknowledgement timeout. Default 1s.
	RetryInterval time.Duration
	// MaxRetries bounds outbound retransmissions. Default 5.
	MaxRetries int
	// Logf, when set, receives debug logs.
	Logf func(format string, args ...any)
}

// Stats counts broker activity.
type Stats struct {
	Sessions          int
	PublishesReceived uint64
	MessagesRouted    uint64
	DuplicatesDropped uint64
	Retransmissions   uint64
	WillsPublished    uint64
	SessionsExpired   uint64
}

type message struct {
	topic   string
	topicID uint16
	payload []byte
	qos     mqttsn.QoS
	retain  bool
}

const (
	obAwaitPuback = iota
	obAwaitPubrec
	obAwaitPubcomp
)

type outbound struct {
	msg      *message
	msgID    uint16
	state    int
	lastSent time.Time
	retries  int
	dup      bool
}

type session struct {
	clientID  string
	addr      net.Addr
	addrKey   string
	keepalive time.Duration
	lastSeen  time.Time

	subs map[string]mqttsn.QoS // filter -> granted qos

	will             *mqttsn.Will
	awaitingWill     bool
	pendingConnackKA uint16

	inbound2    map[uint16]*message
	outbound    map[uint16]*outbound
	nextMsgID   uint16
	knownTopics map[uint16]bool
	pendingReg  map[uint16][]*message // awaiting REGACK before delivery
}

func (s *session) allocMsgID() uint16 {
	for {
		s.nextMsgID++
		if s.nextMsgID == 0 {
			continue
		}
		if _, inUse := s.outbound[s.nextMsgID]; !inUse {
			return s.nextMsgID
		}
	}
}

// Broker is an MQTT-SN broker. Create with New, stop with Close.
type Broker struct {
	cfg  Config
	conn net.PacketConn

	mu          sync.Mutex
	sessions    map[string]*session // by addr string
	byClientID  map[string]*session
	topicIDs    map[string]uint16
	topicNames  map[uint16]string
	nextTopicID uint16
	retained    map[string]*message
	stats       Stats

	done chan struct{}
	wg   sync.WaitGroup
}

// New creates a broker and starts serving on its socket.
func New(cfg Config) (*Broker, error) {
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = time.Second
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 5
	}
	conn := cfg.Conn
	if conn == nil {
		addr := cfg.Addr
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		var err error
		conn, err = net.ListenPacket("udp", addr)
		if err != nil {
			return nil, fmt.Errorf("broker: listen %s: %w", addr, err)
		}
	}
	b := &Broker{
		cfg:        cfg,
		conn:       conn,
		sessions:   map[string]*session{},
		byClientID: map[string]*session{},
		topicIDs:   map[string]uint16{},
		topicNames: map[uint16]string{},
		retained:   map[string]*message{},
		done:       make(chan struct{}),
	}
	b.wg.Add(2)
	go b.readLoop()
	go b.janitor()
	return b, nil
}

// Addr returns the UDP address the broker serves on.
func (b *Broker) Addr() string { return b.conn.LocalAddr().String() }

// Stats returns a snapshot of broker counters.
func (b *Broker) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.stats
	st.Sessions = len(b.sessions)
	return st
}

// Close stops the broker and releases its socket.
func (b *Broker) Close() {
	select {
	case <-b.done:
		return
	default:
	}
	close(b.done)
	b.conn.Close()
	b.wg.Wait()
}

func (b *Broker) logf(format string, args ...any) {
	if b.cfg.Logf != nil {
		b.cfg.Logf(format, args...)
	}
}

func (b *Broker) sendTo(addr net.Addr, p mqttsn.Packet) {
	if _, err := b.conn.WriteTo(mqttsn.Marshal(p), addr); err != nil {
		b.logf("broker: send %s to %s: %v", p.Type(), addr, err)
	}
}

func (b *Broker) readLoop() {
	defer b.wg.Done()
	buf := make([]byte, 65536)
	for {
		select {
		case <-b.done:
			return
		default:
		}
		b.conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		n, addr, err := b.conn.ReadFrom(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			select {
			case <-b.done:
				return
			default:
				if err, ok := err.(net.Error); ok && !err.Timeout() {
					log.Printf("broker: read: %v", err)
				}
				return
			}
		}
		pkt, err := mqttsn.Unmarshal(buf[:n])
		if err != nil {
			b.logf("broker: drop malformed datagram from %s: %v", addr, err)
			continue
		}
		b.handle(addr, pkt)
	}
}

// janitor retransmits stale outbound messages and expires dead sessions.
func (b *Broker) janitor() {
	defer b.wg.Done()
	tick := time.NewTicker(b.cfg.RetryInterval / 2)
	defer tick.Stop()
	for {
		select {
		case <-b.done:
			return
		case <-tick.C:
			b.sweep()
		}
	}
}

func (b *Broker) sweep() {
	b.mu.Lock()
	now := time.Now()
	type resend struct {
		addr net.Addr
		pkt  mqttsn.Packet
	}
	var resends []resend
	var wills []*message
	for key, s := range b.sessions {
		// Keepalive expiry with 1.5x grace (spec §6.13 suggests tolerance).
		if s.keepalive > 0 && now.Sub(s.lastSeen) > s.keepalive+s.keepalive/2 {
			b.stats.SessionsExpired++
			if s.will != nil {
				wills = append(wills, &message{
					topic: s.will.Topic, payload: s.will.Payload,
					qos: s.will.QoS, retain: s.will.Retain,
				})
				b.stats.WillsPublished++
			}
			delete(b.sessions, key)
			delete(b.byClientID, s.clientID)
			continue
		}
		for msgID, ob := range s.outbound {
			if now.Sub(ob.lastSent) < b.cfg.RetryInterval {
				continue
			}
			if ob.retries >= b.cfg.MaxRetries {
				delete(s.outbound, msgID)
				continue
			}
			ob.retries++
			ob.lastSent = now
			ob.dup = true
			b.stats.Retransmissions++
			switch ob.state {
			case obAwaitPubcomp:
				resends = append(resends, resend{s.addr, &mqttsn.Pubrel{}})
				setMsgID(resends[len(resends)-1].pkt, msgID)
			default:
				pub := b.publishPacketLocked(s, ob)
				resends = append(resends, resend{s.addr, pub})
			}
		}
	}
	b.mu.Unlock()
	for _, r := range resends {
		b.sendTo(r.addr, r.pkt)
	}
	for _, w := range wills {
		b.route(w)
	}
}

// setMsgID sets the MsgID on PUBREL (helper for sweep).
func setMsgID(p mqttsn.Packet, id uint16) {
	if rel, ok := p.(*mqttsn.Pubrel); ok {
		rel.MsgID = id
	}
}

// publishPacketLocked builds the PUBLISH for an outbound entry.
func (b *Broker) publishPacketLocked(s *session, ob *outbound) *mqttsn.Publish {
	return &mqttsn.Publish{
		Flags:   mqttsn.Flags{QoS: ob.msg.qos, DUP: ob.dup, Retain: ob.msg.retain},
		TopicID: ob.msg.topicID,
		MsgID:   ob.msgID,
		Data:    ob.msg.payload,
	}
}

// topicID returns (allocating if needed) the gateway-scoped id for a topic.
func (b *Broker) topicIDLocked(topic string) uint16 {
	if id, ok := b.topicIDs[topic]; ok {
		return id
	}
	b.nextTopicID++
	if b.nextTopicID == 0 {
		b.nextTopicID = 1
	}
	id := b.nextTopicID
	b.topicIDs[topic] = id
	b.topicNames[id] = topic
	return id
}

func (b *Broker) sessionFor(addr net.Addr) *session {
	return b.sessions[addr.String()]
}

func (b *Broker) handle(addr net.Addr, pkt mqttsn.Packet) {
	switch p := pkt.(type) {
	case *mqttsn.Connect:
		b.handleConnect(addr, p)
	case *mqttsn.WillTopic:
		b.handleWillTopic(addr, p)
	case *mqttsn.WillMsg:
		b.handleWillMsg(addr, p)
	case *mqttsn.Register:
		b.handleRegister(addr, p)
	case *mqttsn.Regack:
		b.handleRegack(addr, p)
	case *mqttsn.Publish:
		b.handlePublish(addr, p)
	case *mqttsn.Pubrel:
		b.handlePubrel(addr, p)
	case *mqttsn.Puback:
		b.handlePuback(addr, p)
	case *mqttsn.Pubrec:
		b.handlePubrec(addr, p)
	case *mqttsn.Pubcomp:
		b.handlePubcomp(addr, p)
	case *mqttsn.Subscribe:
		b.handleSubscribe(addr, p)
	case *mqttsn.Unsubscribe:
		b.handleUnsubscribe(addr, p)
	case *mqttsn.Pingreq:
		b.touch(addr)
		b.sendTo(addr, &mqttsn.Pingresp{})
	case *mqttsn.Disconnect:
		b.handleDisconnect(addr)
	case *mqttsn.SearchGw:
		b.sendTo(addr, &mqttsn.GwInfo{GwID: 1})
	default:
		b.logf("broker: ignoring %s from %s", pkt.Type(), addr)
	}
}

func (b *Broker) touch(addr net.Addr) {
	b.mu.Lock()
	if s := b.sessionFor(addr); s != nil {
		s.lastSeen = time.Now()
	}
	b.mu.Unlock()
}

func (b *Broker) handleConnect(addr net.Addr, p *mqttsn.Connect) {
	b.mu.Lock()
	// Replace any session with the same client id (possibly at an old addr).
	if old, ok := b.byClientID[p.ClientID]; ok {
		delete(b.sessions, old.addrKey)
		delete(b.byClientID, old.clientID)
	}
	s := &session{
		clientID:    p.ClientID,
		addr:        addr,
		addrKey:     addr.String(),
		keepalive:   time.Duration(p.Duration) * time.Second,
		lastSeen:    time.Now(),
		subs:        map[string]mqttsn.QoS{},
		inbound2:    map[uint16]*message{},
		outbound:    map[uint16]*outbound{},
		knownTopics: map[uint16]bool{},
		pendingReg:  map[uint16][]*message{},
	}
	b.sessions[s.addrKey] = s
	b.byClientID[p.ClientID] = s
	awaitWill := p.Flags.Will
	s.awaitingWill = awaitWill
	b.mu.Unlock()

	if awaitWill {
		b.sendTo(addr, &mqttsn.WillTopicReq{})
		return
	}
	b.sendTo(addr, &mqttsn.Connack{ReturnCode: mqttsn.Accepted})
}

func (b *Broker) handleWillTopic(addr net.Addr, p *mqttsn.WillTopic) {
	b.mu.Lock()
	s := b.sessionFor(addr)
	if s != nil {
		if s.will == nil {
			s.will = &mqttsn.Will{}
		}
		s.will.Topic = p.Topic
		s.will.QoS = p.Flags.QoS
		s.will.Retain = p.Flags.Retain
		s.lastSeen = time.Now()
	}
	b.mu.Unlock()
	if s != nil {
		b.sendTo(addr, &mqttsn.WillMsgReq{})
	}
}

func (b *Broker) handleWillMsg(addr net.Addr, p *mqttsn.WillMsg) {
	b.mu.Lock()
	s := b.sessionFor(addr)
	if s != nil {
		if s.will == nil {
			s.will = &mqttsn.Will{}
		}
		s.will.Payload = p.Msg
		s.awaitingWill = false
		s.lastSeen = time.Now()
	}
	b.mu.Unlock()
	if s != nil {
		b.sendTo(addr, &mqttsn.Connack{ReturnCode: mqttsn.Accepted})
	}
}

func (b *Broker) handleRegister(addr net.Addr, p *mqttsn.Register) {
	b.mu.Lock()
	s := b.sessionFor(addr)
	if s == nil {
		b.mu.Unlock()
		b.sendTo(addr, &mqttsn.Regack{MsgID: p.MsgID, ReturnCode: mqttsn.RejectedNotSupported})
		return
	}
	s.lastSeen = time.Now()
	if !mqttsn.ValidTopicName(p.TopicName) {
		b.mu.Unlock()
		b.sendTo(addr, &mqttsn.Regack{MsgID: p.MsgID, ReturnCode: mqttsn.RejectedNotSupported})
		return
	}
	id := b.topicIDLocked(p.TopicName)
	s.knownTopics[id] = true
	b.mu.Unlock()
	b.sendTo(addr, &mqttsn.Regack{TopicID: id, MsgID: p.MsgID, ReturnCode: mqttsn.Accepted})
}

func (b *Broker) handleRegack(addr net.Addr, p *mqttsn.Regack) {
	b.mu.Lock()
	s := b.sessionFor(addr)
	var flush []*message
	if s != nil {
		s.lastSeen = time.Now()
		if p.ReturnCode == mqttsn.Accepted {
			s.knownTopics[p.TopicID] = true
			flush = s.pendingReg[p.TopicID]
			delete(s.pendingReg, p.TopicID)
		} else {
			delete(s.pendingReg, p.TopicID)
		}
	}
	b.mu.Unlock()
	for _, m := range flush {
		b.deliver(s, m)
	}
}

func (b *Broker) handlePublish(addr net.Addr, p *mqttsn.Publish) {
	b.mu.Lock()
	s := b.sessionFor(addr)
	topic, knownTopic := b.topicNames[p.TopicID]
	if s != nil {
		s.lastSeen = time.Now()
	}
	b.stats.PublishesReceived++
	b.mu.Unlock()

	// QoS -1 publishes are allowed without a session (spec: predefined
	// topics); we accept them for already-registered topic ids.
	if s == nil && p.Flags.QoS != mqttsn.QoSMinusOne {
		if p.Flags.QoS == mqttsn.QoS1 || p.Flags.QoS == mqttsn.QoS2 {
			b.sendTo(addr, &mqttsn.Puback{TopicID: p.TopicID, MsgID: p.MsgID, ReturnCode: mqttsn.RejectedNotSupported})
		}
		return
	}
	if !knownTopic {
		if p.Flags.QoS == mqttsn.QoS1 || p.Flags.QoS == mqttsn.QoS2 {
			b.sendTo(addr, &mqttsn.Puback{TopicID: p.TopicID, MsgID: p.MsgID, ReturnCode: mqttsn.RejectedInvalidID})
		}
		return
	}
	msg := &message{topic: topic, topicID: p.TopicID, payload: p.Data, qos: p.Flags.QoS, retain: p.Flags.Retain}
	switch p.Flags.QoS {
	case mqttsn.QoS0, mqttsn.QoSMinusOne:
		b.route(msg)
	case mqttsn.QoS1:
		b.route(msg)
		b.sendTo(addr, &mqttsn.Puback{TopicID: p.TopicID, MsgID: p.MsgID, ReturnCode: mqttsn.Accepted})
	case mqttsn.QoS2:
		b.mu.Lock()
		if _, dup := s.inbound2[p.MsgID]; dup {
			b.stats.DuplicatesDropped++
		} else {
			s.inbound2[p.MsgID] = msg
		}
		b.mu.Unlock()
		rec := &mqttsn.Pubrec{}
		rec.MsgID = p.MsgID
		b.sendTo(addr, rec)
	}
}

func (b *Broker) handlePubrel(addr net.Addr, p *mqttsn.Pubrel) {
	b.mu.Lock()
	s := b.sessionFor(addr)
	var msg *message
	if s != nil {
		s.lastSeen = time.Now()
		msg = s.inbound2[p.MsgID]
		delete(s.inbound2, p.MsgID)
	}
	b.mu.Unlock()
	comp := &mqttsn.Pubcomp{}
	comp.MsgID = p.MsgID
	b.sendTo(addr, comp)
	if msg != nil {
		b.route(msg) // exactly once: only routed on first PUBREL
	}
}

func (b *Broker) handlePuback(addr net.Addr, p *mqttsn.Puback) {
	b.mu.Lock()
	if s := b.sessionFor(addr); s != nil {
		s.lastSeen = time.Now()
		if ob, ok := s.outbound[p.MsgID]; ok && ob.state == obAwaitPuback {
			delete(s.outbound, p.MsgID)
		}
	}
	b.mu.Unlock()
}

func (b *Broker) handlePubrec(addr net.Addr, p *mqttsn.Pubrec) {
	b.mu.Lock()
	s := b.sessionFor(addr)
	send := false
	if s != nil {
		s.lastSeen = time.Now()
		if ob, ok := s.outbound[p.MsgID]; ok && ob.state == obAwaitPubrec {
			ob.state = obAwaitPubcomp
			ob.lastSent = time.Now()
			ob.retries = 0
			send = true
		} else if ok {
			send = true // duplicate PUBREC: re-send PUBREL
		}
	}
	b.mu.Unlock()
	if send {
		rel := &mqttsn.Pubrel{}
		rel.MsgID = p.MsgID
		b.sendTo(addr, rel)
	}
}

func (b *Broker) handlePubcomp(addr net.Addr, p *mqttsn.Pubcomp) {
	b.mu.Lock()
	if s := b.sessionFor(addr); s != nil {
		s.lastSeen = time.Now()
		if ob, ok := s.outbound[p.MsgID]; ok && ob.state == obAwaitPubcomp {
			delete(s.outbound, p.MsgID)
		}
	}
	b.mu.Unlock()
}

func (b *Broker) handleSubscribe(addr net.Addr, p *mqttsn.Subscribe) {
	b.mu.Lock()
	s := b.sessionFor(addr)
	if s == nil {
		b.mu.Unlock()
		b.sendTo(addr, &mqttsn.Suback{MsgID: p.MsgID, ReturnCode: mqttsn.RejectedNotSupported})
		return
	}
	s.lastSeen = time.Now()
	filter := p.TopicName
	if p.Flags.TopicIDType == mqttsn.TopicPredefined {
		filter = b.topicNames[p.TopicID]
	}
	if !mqttsn.ValidFilter(filter) {
		b.mu.Unlock()
		b.sendTo(addr, &mqttsn.Suback{MsgID: p.MsgID, ReturnCode: mqttsn.RejectedNotSupported})
		return
	}
	s.subs[filter] = p.Flags.QoS
	var topicID uint16
	if mqttsn.ValidTopicName(filter) { // exact topic: hand out its id now
		topicID = b.topicIDLocked(filter)
		s.knownTopics[topicID] = true
	}
	// Collect matching retained messages for delivery after SUBACK.
	var retained []*message
	for topic, m := range b.retained {
		if mqttsn.TopicMatches(filter, topic) {
			retained = append(retained, m)
		}
	}
	grantedQoS := p.Flags.QoS
	b.mu.Unlock()

	b.sendTo(addr, &mqttsn.Suback{
		Flags:   mqttsn.Flags{QoS: grantedQoS},
		TopicID: topicID, MsgID: p.MsgID, ReturnCode: mqttsn.Accepted,
	})
	for _, m := range retained {
		out := *m
		if out.qos > grantedQoS {
			out.qos = grantedQoS
		}
		b.deliver(s, &out)
	}
}

func (b *Broker) handleUnsubscribe(addr net.Addr, p *mqttsn.Unsubscribe) {
	b.mu.Lock()
	s := b.sessionFor(addr)
	if s != nil {
		s.lastSeen = time.Now()
		filter := p.TopicName
		if p.Flags.TopicIDType == mqttsn.TopicPredefined {
			filter = b.topicNames[p.TopicID]
		}
		delete(s.subs, filter)
	}
	b.mu.Unlock()
	ack := &mqttsn.Unsuback{}
	ack.MsgID = p.MsgID
	b.sendTo(addr, ack)
}

func (b *Broker) handleDisconnect(addr net.Addr) {
	b.mu.Lock()
	s := b.sessionFor(addr)
	if s != nil {
		// Clean disconnect: will is discarded (spec §6.14).
		delete(b.sessions, s.addrKey)
		delete(b.byClientID, s.clientID)
	}
	b.mu.Unlock()
	b.sendTo(addr, &mqttsn.Disconnect{})
}

// route fans a message out to all matching subscribers (and stores it if
// retained).
func (b *Broker) route(msg *message) {
	b.mu.Lock()
	if msg.retain {
		if len(msg.payload) == 0 {
			delete(b.retained, msg.topic)
		} else {
			b.retained[msg.topic] = msg
		}
	}
	if msg.topicID == 0 {
		msg.topicID = b.topicIDLocked(msg.topic)
	}
	type target struct {
		s   *session
		qos mqttsn.QoS
	}
	var targets []target
	for _, s := range b.sessions {
		best := mqttsn.QoS(-2)
		for filter, subQoS := range s.subs {
			if mqttsn.TopicMatches(filter, msg.topic) && subQoS > best {
				best = subQoS
			}
		}
		if best >= -1 {
			q := msg.qos
			if best < q {
				q = best
			}
			targets = append(targets, target{s, q})
		}
	}
	b.stats.MessagesRouted += uint64(len(targets))
	b.mu.Unlock()

	for _, t := range targets {
		out := *msg
		out.qos = t.qos
		b.deliver(t.s, &out)
	}
}

// deliver sends one message to one subscriber, respecting its QoS and
// registering the topic first if the client does not know its id.
func (b *Broker) deliver(s *session, msg *message) {
	b.mu.Lock()
	if !s.knownTopics[msg.topicID] {
		// Queue behind a REGISTER exchange.
		pending, already := s.pendingReg[msg.topicID]
		s.pendingReg[msg.topicID] = append(pending, msg)
		addr := s.addr
		topic := msg.topic
		id := msg.topicID
		var regMsgID uint16
		if !already {
			regMsgID = s.allocMsgID()
		}
		b.mu.Unlock()
		if !already {
			b.sendTo(addr, &mqttsn.Register{TopicID: id, MsgID: regMsgID, TopicName: topic})
		}
		return
	}
	var pub *mqttsn.Publish
	switch msg.qos {
	case mqttsn.QoS1, mqttsn.QoS2:
		msgID := s.allocMsgID()
		ob := &outbound{msg: msg, msgID: msgID, lastSent: time.Now()}
		if msg.qos == mqttsn.QoS1 {
			ob.state = obAwaitPuback
		} else {
			ob.state = obAwaitPubrec
		}
		s.outbound[msgID] = ob
		pub = b.publishPacketLocked(s, ob)
	default:
		pub = &mqttsn.Publish{
			Flags:   mqttsn.Flags{QoS: msg.qos, Retain: msg.retain},
			TopicID: msg.topicID,
			Data:    msg.payload,
		}
	}
	addr := s.addr
	b.mu.Unlock()
	b.sendTo(addr, pub)
}
