// Package broker implements an MQTT-SN gateway/broker: the Go
// equivalent of the Eclipse RSMB (Really Small Message Broker) that
// ProvLight's server side builds on (paper §IV-C1). It serves plain UDP
// by default, or any transport.Transport (in-process loopback, TCP
// stream) — one datagram-shaped packet per MQTT-SN message either way.
//
// Features: client sessions with keepalive expiry, topic registration with
// gateway-scoped 16-bit ids, exact and wildcard ('+', '#') subscriptions,
// shared-subscription consumer groups ("$share/<group>/<filter>"),
// QoS 0/1/2 inbound and outbound flows with exactly-once semantics at
// QoS 2, retained messages, and last-will publication when a session is
// lost. A janitor goroutine retransmits unacknowledged outbound messages
// and expires dead sessions.
//
// One broker process is a complete gateway on its own, and it is also
// the building block of internal/cluster's multi-node tier: the Forward
// hook intercepts released publishes so the cluster can ship them to a
// topic's owning node, Submit/Inject re-enter frames that arrived over
// inter-node links, the OnSubscribe/OnUnsubscribe hooks let individual
// subscriptions propagate across nodes, and PendingForTopics /
// DetachMatching expose the drain introspection live partition
// migration needs. None of those hooks are set in single-node use, and
// the broker then behaves exactly as it did before clustering existed.
//
// Fast path: session state is striped across N mutex-guarded shards keyed
// by client address, and each shard has its own handler goroutine fed from
// pooled datagram buffers, so one hot session or slow subscriber contends
// only with the clients that hash to its shard instead of serializing the
// whole gateway. The topic registry is a copy-on-write atomic snapshot
// (reads are lock-free; registrations clone the maps), routed message and
// outbound-flow structs are pooled, and counters are atomics. Lock order:
// clientMu before any shard mutex; a shard mutex may be held when taking
// groupMu, never the reverse; retained and topic-write locks are leaves;
// no two shard mutexes are ever held at once.
package broker

import (
	"fmt"
	"hash/maphash"
	"log"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/provlight/provlight/internal/mqttsn"
	"github.com/provlight/provlight/internal/obs"
	"github.com/provlight/provlight/internal/transport"
	"github.com/provlight/provlight/internal/wire"
)

// BridgeSessionPrefix marks inter-node bridge sessions (the mqttsn
// clients internal/cluster uses as forwarding links). Frames re-entering
// a node via Inject skip sessions whose client id carries this prefix,
// so a publication can never echo between nodes.
const BridgeSessionPrefix = "!bridge/"

// ForwardFrame is one released publish offered to the Forward hook.
// The payload is owned by the receiver (publish payloads are copied at
// decode and never pooled), so the hook may retain it.
type ForwardFrame struct {
	Topic   string
	Payload []byte
	QoS     mqttsn.QoS
	Retain  bool
	// Bridge marks frames published by an inter-node bridge session
	// (clientID prefixed BridgeSessionPrefix): the frame already crossed a
	// forwarding link from a peer. The cluster uses it to record
	// forward-hop latency exactly once, at the hop's receiving end.
	Bridge bool
}

// Config configures a broker.
type Config struct {
	// Addr is the listen address in the transport's format (e.g.
	// "127.0.0.1:1883" for UDP/TCP). Ignored if Conn is set.
	Addr string
	// Conn optionally supplies a pre-made (possibly netem-shaped) socket.
	Conn net.PacketConn
	// Transport, when set and Conn is nil, listens over an alternate
	// packet substrate (in-process loopback, TCP stream). The default is
	// plain UDP.
	Transport transport.Transport
	// RetryInterval is the outbound acknowledgement timeout. Default 1s.
	RetryInterval time.Duration
	// MaxRetries bounds outbound retransmissions. Default 5.
	MaxRetries int
	// SendWindow bounds how many QoS 1/2 messages may be in flight to one
	// subscriber at a time; the rest queue in arrival order and are sent
	// as earlier ones complete. Without it a fan-in burst (many devices,
	// one translator) floods the subscriber's UDP socket buffer, and
	// datagrams dropped there must all be recovered by timed
	// retransmissions — or are lost for good once MaxRetries is spent.
	// Default 32.
	SendWindow int
	// Shards is the number of session-table stripes, each with its own
	// mutex and handler goroutine. Default 16.
	Shards int
	// HandlerQueue bounds each shard's pending-packet queue. Default 256.
	HandlerQueue int
	// MaxSessions caps concurrently live sessions (0 = unlimited). A
	// CONNECT from a *new* client id over the cap is rejected with a
	// congestion CONNACK; a reconnect of an existing session always
	// replaces it and is never count-rejected.
	MaxSessions int
	// ConnectRate caps accepted CONNECTs per second (0 = unlimited) via
	// a token bucket of ConnectBurst capacity. This is the thundering-
	// herd valve: when a partition heals and every device reconnects at
	// once, the excess get a congestion CONNACK and retry with jitter
	// instead of all melting the broker in the same instant.
	ConnectRate float64
	// ConnectBurst is the token-bucket depth for ConnectRate. Default
	// max(2×ConnectRate, 1).
	ConnectBurst int
	// Forward, when set, is consulted once for every fully-released
	// inbound publish (after QoS 2 ordered release, so it sees frames in
	// the same order local routing would). Returning true takes ownership
	// of the frame — it is not routed locally and counts as Forwarded.
	// internal/cluster uses this to ship frames to a topic's owning node.
	// The hook may block briefly (backpressure propagates to the
	// publisher's shard worker) but must not call back into this broker.
	Forward func(ForwardFrame) bool
	// OnSubscribe/OnUnsubscribe, when set, observe individual (non-shared)
	// subscription changes from non-bridge sessions: OnSubscribe fires
	// when a session adds a filter it did not have, OnUnsubscribe when a
	// filter is dropped by an explicit UNSUBSCRIBE or by session teardown
	// (disconnect, expiry, reconnect replacement). The cluster propagates
	// these filters to peer nodes so frames released anywhere reach
	// subscribers everywhere. Hooks must not block and must not call back
	// into this broker.
	OnSubscribe   func(filter string)
	OnUnsubscribe func(filter string)
	// ConnectGate, when set, is consulted for every CONNECT that passed
	// admission control, before a session is created. Returning anything
	// other than Accepted refuses the session with that CONNACK code and
	// leaves existing sessions untouched. The cluster uses this to fence
	// membership: a bridge session from a node that is no longer a member
	// is refused with RejectedInvalidID, so a zombie's forwards can never
	// fork a partition's stream. Must not block or call back into this
	// broker.
	ConnectGate func(clientID string) mqttsn.ReturnCode
	// Metrics, when set, feeds the broker-route stage of the e2e frame
	// latency histogram (frames whose payload carries a capture
	// timestamp). Counter export is the owner's job — the daemon or
	// cluster registers one Collect over Stats(), so a node that leaves a
	// cluster cannot strand a stale collector in a shared registry.
	Metrics *obs.Registry
	// Logf, when set, receives debug logs.
	Logf func(format string, args ...any)
}

// Stats counts broker activity.
type Stats struct {
	Sessions          int
	Groups            int // live consumer groups ($share subscriptions)
	PublishesReceived uint64
	MessagesRouted    uint64
	DuplicatesDropped uint64
	Retransmissions   uint64
	WillsPublished    uint64
	SessionsExpired   uint64
	// DeliveryGiveUps counts QoS 1/2 frames dropped for good: abandoned
	// after MaxRetries (or at session teardown) with no consumer group to
	// hand them back to.
	DeliveryGiveUps uint64
	// GroupRerouted counts frames re-delivered to a surviving
	// consumer-group member after their assigned member died or stopped
	// acknowledging.
	GroupRerouted uint64
	// BacklogDropped counts queued or in-flight frames discarded because
	// their (non-group) subscriber session ended before delivery
	// completed.
	BacklogDropped uint64
	// CongestionRejected counts CONNECTs refused by admission control
	// (session cap or connection-rate limit) with a congestion CONNACK.
	CongestionRejected uint64
	// Forwarded counts released publishes the Forward hook took ownership
	// of instead of local routing — in a cluster, frames this node shipped
	// to their topic's owning node (or buffered during a migration pause).
	Forwarded uint64
	// Injected counts frames re-entered through Inject: publications that
	// arrived over an inter-node bridge link and were delivered to this
	// node's local individual subscribers.
	Injected uint64
	// Migrated counts frames extracted by DetachMatching during a
	// partition handoff: queued or in-flight state the old owner detached
	// from its local subscribers so the new owner could take over
	// delivery.
	Migrated uint64
}

// CollectStats registers a scrape-time collector on r exporting s() under
// the provlight_broker_* metric families, labeled node=<node> when node is
// non-empty (cluster members) and unlabeled for a standalone broker. The
// caller owns the collector's lifetime coupling: pass a stats func whose
// broker outlives the registry's scrapes, or one that returns zero values
// after close (Broker.Stats does — counters remain readable).
func CollectStats(r *obs.Registry, node string, s func() Stats) {
	if r == nil {
		return
	}
	r.Collect(func(e *obs.Emitter) {
		var lbl []string
		if node != "" {
			lbl = []string{"node", node}
		}
		EmitStats(e, s(), lbl...)
	})
}

// EmitStats writes one broker stats snapshot into a scrape, under the
// given extra labels. Factored out of CollectStats so a cluster with a
// dynamic node set can emit every member from a single collector.
func EmitStats(e *obs.Emitter, st Stats, lbl ...string) {
	e.Gauge("provlight_broker_sessions", "Live MQTT-SN sessions.", float64(st.Sessions), lbl...)
	e.Gauge("provlight_broker_groups", "Live consumer groups ($share subscriptions).", float64(st.Groups), lbl...)
	e.Counter("provlight_broker_publishes_received_total", "PUBLISH packets received.", float64(st.PublishesReceived), lbl...)
	e.Counter("provlight_broker_messages_routed_total", "Frames routed to local subscribers.", float64(st.MessagesRouted), lbl...)
	e.Counter("provlight_broker_duplicates_dropped_total", "QoS 2 duplicate publishes dropped.", float64(st.DuplicatesDropped), lbl...)
	e.Counter("provlight_broker_retransmissions_total", "Outbound retransmissions.", float64(st.Retransmissions), lbl...)
	e.Counter("provlight_broker_delivery_giveups_total", "QoS 1/2 frames abandoned after MaxRetries with no group to reclaim them.", float64(st.DeliveryGiveUps), lbl...)
	e.Counter("provlight_broker_group_rerouted_total", "Frames re-delivered to a surviving consumer-group member.", float64(st.GroupRerouted), lbl...)
	e.Counter("provlight_broker_backlog_dropped_total", "Frames discarded because their subscriber session ended.", float64(st.BacklogDropped), lbl...)
	e.Counter("provlight_broker_congestion_rejected_total", "CONNECTs refused by admission control.", float64(st.CongestionRejected), lbl...)
	e.Counter("provlight_broker_forwarded_total", "Released publishes the cluster Forward hook took.", float64(st.Forwarded), lbl...)
	e.Counter("provlight_broker_injected_total", "Frames delivered locally after arriving over a bridge link.", float64(st.Injected), lbl...)
	e.Counter("provlight_broker_migrated_total", "Frames detached during partition handoffs.", float64(st.Migrated), lbl...)
}

type message struct {
	topic   string
	topicID uint16
	payload []byte
	qos     mqttsn.QoS
	retain  bool
	seq     uint64 // per-publisher arrival sequence (QoS 2 ordered release)
	// injected marks frames re-entered via Inject (arrived over an
	// inter-node bridge): routed to local individual non-bridge
	// subscribers only — no groups, no retained store, no bridge echo.
	injected bool
	// bridge marks frames whose *publisher* is a bridge session; carried
	// into ForwardFrame so the cluster can spot a completed forward hop.
	bridge bool
	// group is set on copies routed on behalf of a consumer group; a
	// frame the member never acknowledges is handed back to the group
	// instead of dropped.
	group *consumerGroup
}

const (
	obAwaitPuback = iota
	obAwaitPubrec
	obAwaitPubcomp
	// obRelPending: the PUBREC arrived, but an older QoS 2 flow on the
	// session has not had its PUBREL sent yet, so this release is held
	// back. A QoS 2 subscriber delivers on PUBREL, and PUBRECs follow
	// PUBLISH *arrival* order — which the network (or two goroutines
	// racing their post-unlock send loops) may invert. Sending PUBRELs
	// strictly in enqueue (seq) order makes the subscriber's delivery
	// order match the broker's release order no matter how the PUBLISH
	// packets interleaved on the wire. The janitor retransmits the
	// PUBLISH (DUP) for flows parked here, so a gave-up predecessor
	// still unblocks them: the duplicate PUBREC re-runs the collection.
	obRelPending
)

// regFlow is one outstanding REGISTER exchange (broker -> subscriber),
// janitor-retransmitted like any other outbound flow.
type regFlow struct {
	msgID    uint16
	lastSent time.Time
	retries  int
}

type outbound struct {
	msg      *message
	msgID    uint16
	state    int
	lastSent time.Time
	retries  int
	dup      bool
	seq      uint64 // per-session enqueue order (group handoff keeps it)
}

type session struct {
	clientID  string
	addr      net.Addr
	addrKey   string
	keepalive time.Duration
	lastSeen  time.Time

	subs map[string]mqttsn.QoS // filter -> granted qos
	// groupSubs tracks consumer-group memberships by their full
	// "$share/<group>/<filter>" subscribe string, for unsubscribe and
	// teardown.
	groupSubs map[string]*consumerGroup
	// sendSeq stamps outbound QoS 1/2 flows in enqueue order so a dead
	// member's in-flight frames hand off to the group in order.
	sendSeq uint64

	will             *mqttsn.Will
	awaitingWill     bool
	pendingConnackKA uint16

	inbound2    map[uint16]*message
	outbound    map[uint16]*outbound
	sendQ       []*message // QoS 1/2 backlog awaiting a window slot
	nextMsgID   uint16
	knownTopics map[uint16]bool
	pendingReg  map[uint16][]*message // awaiting REGACK before delivery
	// regFlows tracks the in-flight REGISTER exchange per pending topic
	// id so the janitor can retransmit a lost REGISTER instead of letting
	// pendingReg wedge forever, and give the frames up (or hand them back
	// to their group) when the subscriber never answers.
	regFlows map[uint16]*regFlow

	// QoS 2 ordered release: with a windowed publisher, PUBRELs can arrive
	// out of publish order; messages are stamped with an arrival sequence
	// and routed strictly in that order (MQTT's per-client ordered
	// delivery), holding early releases until their turn.
	pubSeq    uint64              // next sequence stamped on a fresh inbound QoS 2 publish
	routeSeq  uint64              // next sequence eligible for routing
	held      map[uint64]*message // released but waiting for their turn
	heldSince time.Time           // when the current head-of-line gap appeared

	// recentRel remembers the last released msgIDs so a duplicated or
	// reordered PUBLISH arriving *after* its PUBREL completed is dropped
	// as the duplicate it is, instead of being re-admitted under a fresh
	// sequence that no PUBREL would ever release.
	recentRel  [64]uint16
	recentRelN int // valid entries
	recentRelI int // next write slot
}

// markReleased records a completed QoS 2 msgID. Callers must hold the
// session's shard mutex.
func (s *session) markReleased(msgID uint16) {
	s.recentRel[s.recentRelI] = msgID
	s.recentRelI = (s.recentRelI + 1) % len(s.recentRel)
	if s.recentRelN < len(s.recentRel) {
		s.recentRelN++
	}
}

// recentlyReleased reports whether msgID completed its QoS 2 flow
// recently. Callers must hold the session's shard mutex.
func (s *session) recentlyReleased(msgID uint16) bool {
	for i := 0; i < s.recentRelN; i++ {
		if s.recentRel[i] == msgID {
			return true
		}
	}
	return false
}

// releaseInOrder registers a PUBREL-released message and returns every
// held message that is now consecutive from routeSeq. Callers must hold
// the session's shard mutex.
func (s *session) releaseInOrder(msg *message) []*message {
	if msg.seq < s.routeSeq {
		// The sweep's head-of-line recovery already skipped past this
		// sequence; deliver the straggler immediately rather than
		// re-holding it (which would drag routeSeq backwards at the next
		// recovery and stall the session).
		return []*message{msg}
	}
	s.held[msg.seq] = msg
	var ready []*message
	for {
		m, ok := s.held[s.routeSeq]
		if !ok {
			break
		}
		delete(s.held, s.routeSeq)
		s.routeSeq++
		ready = append(ready, m)
	}
	if len(s.held) == 0 {
		s.heldSince = time.Time{}
	} else if s.heldSince.IsZero() {
		s.heldSince = time.Now()
	}
	return ready
}

func (s *session) allocMsgID() uint16 {
	for {
		s.nextMsgID++
		if s.nextMsgID == 0 {
			continue
		}
		if _, inUse := s.outbound[s.nextMsgID]; !inUse {
			return s.nextMsgID
		}
	}
}

// shard is one stripe of the session table plus its inbound packet queue.
type shard struct {
	mu       sync.Mutex
	sessions map[string]*session
	inbox    chan inPacket
}

// inPacket is one raw datagram handed from the read loop to a shard
// worker; buf comes from (and returns to) the broker's buffer pool.
type inPacket struct {
	addr net.Addr
	buf  *[]byte
	n    int
}

// counters are the lock-free internals behind Stats.
type counters struct {
	publishesReceived  atomic.Uint64
	messagesRouted     atomic.Uint64
	duplicatesDropped  atomic.Uint64
	retransmissions    atomic.Uint64
	willsPublished     atomic.Uint64
	sessionsExpired    atomic.Uint64
	deliveryGiveUps    atomic.Uint64
	groupRerouted      atomic.Uint64
	backlogDropped     atomic.Uint64
	congestionRejected atomic.Uint64
	forwarded          atomic.Uint64
	injected           atomic.Uint64
	migrated           atomic.Uint64
}

// connLimiter is the CONNECT-admission token bucket. It is consulted once
// per CONNECT (not on the publish hot path), so a mutex is fine.
type connLimiter struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newConnLimiter(rate float64, burst int) *connLimiter {
	if burst <= 0 {
		burst = int(2 * rate)
		if burst < 1 {
			burst = 1
		}
	}
	return &connLimiter{rate: rate, burst: float64(burst), tokens: float64(burst), last: time.Now()}
}

func (cl *connLimiter) allow() bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	now := time.Now()
	cl.tokens += now.Sub(cl.last).Seconds() * cl.rate
	cl.last = now
	if cl.tokens > cl.burst {
		cl.tokens = cl.burst
	}
	if cl.tokens < 1 {
		return false
	}
	cl.tokens--
	return true
}

// topicTables is one immutable snapshot of the gateway-scoped topic
// registry. Lookups on the publish hot path load the current snapshot
// atomically; registrations (rare) clone-and-swap under topicWmu.
type topicTables struct {
	ids   map[string]uint16
	names map[uint16]string
}

// Broker is an MQTT-SN broker. Create with New, stop with Close.
type Broker struct {
	cfg  Config
	conn net.PacketConn

	shards []*shard
	seed   maphash.Seed

	// clientMu guards the clientID -> session index used to replace
	// sessions on reconnect. Acquired before shard mutexes, never after.
	clientMu   sync.Mutex
	byClientID map[string]*session

	// topics is the atomic registry snapshot; topicWmu serializes the
	// (rare) clone-and-swap registrations.
	topics      atomic.Pointer[topicTables]
	topicWmu    sync.Mutex
	nextTopicID uint16 // guarded by topicWmu

	// groupMu guards the consumer-group registry. May be taken while
	// holding a shard mutex, never the reverse.
	groupMu sync.RWMutex
	groups  map[string]*consumerGroup

	// retMu guards the retained-message store.
	retMu    sync.Mutex
	retained map[string]*message

	ctr counters

	// stageRoute is the broker-route stage of the e2e latency histogram
	// (nil without Config.Metrics).
	stageRoute *obs.Histogram

	// connLimit rate-limits CONNECT admission (nil = unlimited).
	connLimit *connLimiter

	// bufPool recycles inbound datagram buffers; outPool recycles
	// outbound marshal buffers on the route path; msgPool and obPool
	// recycle the per-message routing and outbound-flow structs.
	bufPool sync.Pool
	outPool sync.Pool
	msgPool sync.Pool
	obPool  sync.Pool

	done chan struct{}
	wg   sync.WaitGroup
}

// New creates a broker and starts serving on its socket.
func New(cfg Config) (*Broker, error) {
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = time.Second
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 5
	}
	if cfg.SendWindow <= 0 {
		cfg.SendWindow = 32
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	if cfg.HandlerQueue <= 0 {
		cfg.HandlerQueue = 256
	}
	conn := cfg.Conn
	if conn == nil {
		var err error
		if cfg.Transport != nil {
			conn, err = cfg.Transport.Listen(cfg.Addr)
		} else {
			addr := cfg.Addr
			if addr == "" {
				addr = "127.0.0.1:0"
			}
			conn, err = net.ListenPacket("udp", addr)
		}
		if err != nil {
			return nil, fmt.Errorf("broker: listen %q: %w", cfg.Addr, err)
		}
	}
	// The broker is the fan-in point of the whole continuum: a burst from
	// N windowed publishers can exceed the kernel's default receive
	// buffer (a few hundred datagrams) and every dropped datagram costs a
	// RetryInterval stall somewhere. Grow the buffer when the socket
	// supports it; best-effort (errors just keep the kernel default).
	if rb, ok := conn.(interface{ SetReadBuffer(int) error }); ok {
		_ = rb.SetReadBuffer(4 << 20)
	}
	b := &Broker{
		cfg:        cfg,
		conn:       conn,
		seed:       maphash.MakeSeed(),
		byClientID: map[string]*session{},
		groups:     map[string]*consumerGroup{},
		retained:   map[string]*message{},
		bufPool: sync.Pool{
			New: func() any { buf := make([]byte, 65536); return &buf },
		},
		outPool: sync.Pool{
			New: func() any { buf := make([]byte, 0, 2048); return &buf },
		},
		msgPool: sync.Pool{New: func() any { return new(message) }},
		obPool:  sync.Pool{New: func() any { return new(outbound) }},
		done:    make(chan struct{}),
	}
	if cfg.ConnectRate > 0 {
		b.connLimit = newConnLimiter(cfg.ConnectRate, cfg.ConnectBurst)
	}
	if cfg.Metrics != nil {
		b.stageRoute = obs.StageLatency(cfg.Metrics).With(obs.StageBrokerRoute)
	}
	b.topics.Store(&topicTables{ids: map[string]uint16{}, names: map[uint16]string{}})
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{
			sessions: map[string]*session{},
			inbox:    make(chan inPacket, cfg.HandlerQueue),
		}
		b.shards = append(b.shards, sh)
		b.wg.Add(1)
		go b.shardWorker(sh)
	}
	b.wg.Add(2)
	go b.readLoop()
	go b.janitor()
	return b, nil
}

// shardFor maps a client address key to its session stripe. All packets
// from one client land on one shard (and thus one worker), preserving
// per-session handling order.
func (b *Broker) shardFor(addrKey string) *shard {
	return b.shards[int(maphash.String(b.seed, addrKey)%uint64(len(b.shards)))]
}

// Addr returns the address the broker serves on, in its transport's
// format (a UDP/TCP host:port, or a loopback endpoint name).
func (b *Broker) Addr() string { return b.conn.LocalAddr().String() }

// Stats returns a snapshot of broker counters.
func (b *Broker) Stats() Stats {
	st := Stats{
		PublishesReceived:  b.ctr.publishesReceived.Load(),
		MessagesRouted:     b.ctr.messagesRouted.Load(),
		DuplicatesDropped:  b.ctr.duplicatesDropped.Load(),
		Retransmissions:    b.ctr.retransmissions.Load(),
		WillsPublished:     b.ctr.willsPublished.Load(),
		SessionsExpired:    b.ctr.sessionsExpired.Load(),
		DeliveryGiveUps:    b.ctr.deliveryGiveUps.Load(),
		GroupRerouted:      b.ctr.groupRerouted.Load(),
		BacklogDropped:     b.ctr.backlogDropped.Load(),
		CongestionRejected: b.ctr.congestionRejected.Load(),
		Forwarded:          b.ctr.forwarded.Load(),
		Injected:           b.ctr.injected.Load(),
		Migrated:           b.ctr.migrated.Load(),
	}
	for _, sh := range b.shards {
		sh.mu.Lock()
		st.Sessions += len(sh.sessions)
		sh.mu.Unlock()
	}
	b.groupMu.RLock()
	st.Groups = len(b.groups)
	b.groupMu.RUnlock()
	return st
}

// getMsg / putMsg recycle routed message structs. A message has exactly
// one owner at a time (route copy -> sendQ / pendingReg -> outbound entry
// -> released); payload backing arrays are never pooled, so late readers
// of an already-released message's payload are impossible by
// construction — only the struct is reused.
func (b *Broker) getMsg() *message { return b.msgPool.Get().(*message) }

func (b *Broker) putMsg(m *message) {
	if m == nil {
		return
	}
	*m = message{}
	b.msgPool.Put(m)
}

// putOutbound recycles an outbound-flow entry. The caller owns ob.msg
// separately (release or hand off before or after; ob.msg must already be
// detached when the entry could still be observed).
func (b *Broker) putOutbound(ob *outbound) {
	*ob = outbound{}
	b.obPool.Put(ob)
}

// Close stops the broker and releases its socket.
func (b *Broker) Close() {
	select {
	case <-b.done:
		return
	default:
	}
	close(b.done)
	b.conn.Close()
	b.wg.Wait()
}

func (b *Broker) logf(format string, args ...any) {
	if b.cfg.Logf != nil {
		b.cfg.Logf(format, args...)
	}
}

// sendTo marshals p into a pooled buffer and writes it out. WriteTo is
// synchronous, so the buffer is safe to recycle as soon as it returns.
func (b *Broker) sendTo(addr net.Addr, p mqttsn.Packet) {
	bufp := b.outPool.Get().(*[]byte)
	data := mqttsn.AppendPacket((*bufp)[:0], p)
	if _, err := b.conn.WriteTo(data, addr); err != nil {
		b.logf("broker: send %s to %s: %v", p.Type(), addr, err)
	}
	*bufp = data[:0]
	b.outPool.Put(bufp)
}

// readLoop pulls datagrams off the socket and fans them out to the shard
// workers; it does no protocol work itself, so a slow handler only stalls
// its own shard's queue.
func (b *Broker) readLoop() {
	defer b.wg.Done()
	for {
		select {
		case <-b.done:
			return
		default:
		}
		// No per-read deadline: Close() closes the socket, which unblocks
		// ReadFrom; a deadline syscall per packet costs ~30% of the
		// loopback read budget.
		bufp := b.bufPool.Get().(*[]byte)
		n, addr, err := b.conn.ReadFrom(*bufp)
		if err != nil {
			b.bufPool.Put(bufp)
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			select {
			case <-b.done:
				return
			default:
				if err, ok := err.(net.Error); ok && !err.Timeout() {
					log.Printf("broker: read: %v", err)
				}
				return
			}
		}
		sh := b.shardFor(addr.String())
		select {
		case sh.inbox <- inPacket{addr: addr, buf: bufp, n: n}:
		case <-b.done:
			b.bufPool.Put(bufp)
			return
		}
	}
}

// shardWorker decodes and handles the packets of the sessions striped to
// one shard.
func (b *Broker) shardWorker(sh *shard) {
	defer b.wg.Done()
	for {
		select {
		case <-b.done:
			return
		case in := <-sh.inbox:
			pkt, err := mqttsn.Unmarshal((*in.buf)[:in.n])
			if err != nil {
				b.logf("broker: drop malformed datagram from %s: %v", in.addr, err)
			} else {
				b.handle(in.addr, pkt)
			}
			b.bufPool.Put(in.buf)
		}
	}
}

// janitor retransmits stale outbound messages and expires dead sessions.
func (b *Broker) janitor() {
	defer b.wg.Done()
	tick := time.NewTicker(b.cfg.RetryInterval / 2)
	defer tick.Stop()
	for {
		select {
		case <-b.done:
			return
		case <-tick.C:
			b.sweep()
		}
	}
}

func (b *Broker) sweep() {
	now := time.Now()
	type resend struct {
		addr net.Addr
		pkt  mqttsn.Packet
	}
	type giveUp struct {
		s   *session
		msg *message
	}
	type expiry struct {
		s *session
		r sessionRemains
	}
	type eviction struct {
		s      *session
		groups []*consumerGroup
	}
	var resends []resend
	var wills []*message
	var expired []expiry
	var unblocked []*message
	var givenUp []giveUp
	var evictions []eviction
	holDeadline := time.Duration(b.cfg.MaxRetries+1) * b.cfg.RetryInterval
	for _, sh := range b.shards {
		sh.mu.Lock()
		for key, s := range sh.sessions {
			lastGivenUp := len(givenUp)
			// Head-of-line recovery: if a publisher abandoned a QoS 2 flow
			// (its PUBREL never arrived), skip the gap after the publisher
			// itself would have given up, releasing the held messages.
			if len(s.held) > 0 && !s.heldSince.IsZero() && now.Sub(s.heldSince) > holDeadline {
				min := uint64(0)
				first := true
				for seq := range s.held {
					if first || seq < min {
						min, first = seq, false
					}
				}
				s.routeSeq = min
				for {
					m, ok := s.held[s.routeSeq]
					if !ok {
						break
					}
					delete(s.held, s.routeSeq)
					s.routeSeq++
					unblocked = append(unblocked, m)
				}
				if len(s.held) == 0 {
					s.heldSince = time.Time{}
				} else {
					s.heldSince = now
				}
			}
			// Keepalive expiry with 1.5x grace (spec §6.13 suggests tolerance).
			if s.keepalive > 0 && now.Sub(s.lastSeen) > s.keepalive+s.keepalive/2 {
				b.ctr.sessionsExpired.Add(1)
				if s.will != nil {
					w := b.getMsg()
					*w = message{
						topic: s.will.Topic, payload: s.will.Payload,
						qos: s.will.QoS, retain: s.will.Retain,
					}
					wills = append(wills, w)
					b.ctr.willsPublished.Add(1)
				}
				delete(sh.sessions, key)
				expired = append(expired, expiry{s: s, r: b.collectRemainsLocked(s)})
				continue
			}
			gaveUp := false
			for msgID, ob := range s.outbound {
				if now.Sub(ob.lastSent) < b.cfg.RetryInterval {
					continue
				}
				if ob.retries >= b.cfg.MaxRetries {
					// The subscriber stopped acknowledging this frame: stop
					// retrying. Group-routed frames are handed back to the
					// group (settled below, outside the shard mutex);
					// individually-subscribed ones are dropped and counted.
					delete(s.outbound, msgID)
					givenUp = append(givenUp, giveUp{s: s, msg: ob.msg})
					ob.msg = nil
					b.putOutbound(ob)
					gaveUp = true
					continue
				}
				ob.retries++
				ob.lastSent = now
				ob.dup = true
				b.ctr.retransmissions.Add(1)
				switch ob.state {
				case obAwaitPubcomp:
					rel := &mqttsn.Pubrel{}
					rel.MsgID = msgID
					resends = append(resends, resend{s.addr, rel})
				default:
					resends = append(resends, resend{s.addr, publishPacket(ob)})
				}
			}
			if gaveUp {
				// Abandoned messages freed window slots: keep the backlog
				// moving.
				for _, pub := range s.pumpLocked(b, b.cfg.SendWindow) {
					resends = append(resends, resend{s.addr, pub})
				}
			}
			// REGISTER exchanges retransmit like any outbound flow: a
			// lost REGISTER (or REGACK) must not wedge the pending frames
			// behind it forever.
			for topicID, rf := range s.regFlows {
				if now.Sub(rf.lastSent) < b.cfg.RetryInterval {
					continue
				}
				if rf.retries >= b.cfg.MaxRetries {
					delete(s.regFlows, topicID)
					for _, m := range s.pendingReg[topicID] {
						givenUp = append(givenUp, giveUp{s: s, msg: m})
					}
					delete(s.pendingReg, topicID)
					continue
				}
				rf.retries++
				rf.lastSent = now
				b.ctr.retransmissions.Add(1)
				topic, _ := b.topicName(topicID)
				resends = append(resends, resend{s.addr, &mqttsn.Register{
					TopicID: topicID, MsgID: rf.msgID, TopicName: topic,
				}})
			}
			// A session that exhausted MaxRetries on a flow AND has been
			// completely silent for the whole give-up horizon (no ack,
			// no ping — nothing moved lastSeen) is indistinguishable
			// from dead: evict it from its groups so the handoff below
			// cannot assign the frames right back to it (it re-joins by
			// re-subscribing; keepalive expiry reclaims the session
			// itself). A live-but-slow member keeps acknowledging or
			// pinging, keeps lastSeen fresh, and only ever loses the
			// individual frame — never its membership.
			if len(givenUp) > lastGivenUp && len(s.groupSubs) > 0 &&
				now.Sub(s.lastSeen) > time.Duration(b.cfg.MaxRetries)*b.cfg.RetryInterval {
				ev := eviction{s: s}
				for _, g := range s.groupSubs {
					ev.groups = append(ev.groups, g)
				}
				s.groupSubs = map[string]*consumerGroup{}
				evictions = append(evictions, ev)
			}
		}
		sh.mu.Unlock()
	}
	if len(expired) > 0 {
		b.clientMu.Lock()
		for _, e := range expired {
			if b.byClientID[e.s.clientID] == e.s {
				delete(b.byClientID, e.s.clientID)
			}
		}
		b.clientMu.Unlock()
	}
	for _, r := range resends {
		b.sendTo(r.addr, r.pkt)
	}
	// Settle outside every shard mutex: handoff re-delivers via other
	// shards' sessions. Evictions go first so the re-routing below never
	// assigns a frame back to a member that just proved unresponsive.
	for _, ev := range evictions {
		for _, g := range ev.groups {
			b.leaveGroup(g, ev.s)
		}
	}
	for _, e := range expired {
		b.settleRemains(e.s, e.r)
	}
	for _, g := range givenUp {
		b.settleUndeliverable(g.s, g.msg)
	}
	for _, m := range unblocked {
		b.routeAndRelease(m)
	}
	for _, w := range wills {
		b.routeAndRelease(w)
	}
}

// publishPacket builds the PUBLISH for an outbound entry. Callers must
// hold the session's shard mutex.
func publishPacket(ob *outbound) *mqttsn.Publish {
	return &mqttsn.Publish{
		Flags:   mqttsn.Flags{QoS: ob.msg.qos, DUP: ob.dup, Retain: ob.msg.retain},
		TopicID: ob.msg.topicID,
		MsgID:   ob.msgID,
		Data:    ob.msg.payload,
	}
}

// topicID returns (allocating if needed) the gateway-scoped id for a
// topic. The hit path is a lock-free snapshot load, so concurrent
// publishes never serialize on the registry.
func (b *Broker) topicID(topic string) uint16 {
	if id, ok := b.topics.Load().ids[topic]; ok {
		return id
	}
	b.topicWmu.Lock()
	defer b.topicWmu.Unlock()
	cur := b.topics.Load()
	if id, ok := cur.ids[topic]; ok {
		return id
	}
	b.nextTopicID++
	if b.nextTopicID == 0 {
		b.nextTopicID = 1
	}
	id := b.nextTopicID
	next := &topicTables{
		ids:   make(map[string]uint16, len(cur.ids)+1),
		names: make(map[uint16]string, len(cur.names)+1),
	}
	for k, v := range cur.ids {
		next.ids[k] = v
	}
	for k, v := range cur.names {
		next.names[k] = v
	}
	next.ids[topic] = id
	next.names[id] = topic
	b.topics.Store(next)
	return id
}

// topicName resolves a gateway-scoped topic id (lock-free snapshot read).
func (b *Broker) topicName(id uint16) (string, bool) {
	name, ok := b.topics.Load().names[id]
	return name, ok
}

func (b *Broker) handle(addr net.Addr, pkt mqttsn.Packet) {
	switch p := pkt.(type) {
	case *mqttsn.Connect:
		b.handleConnect(addr, p)
	case *mqttsn.WillTopic:
		b.handleWillTopic(addr, p)
	case *mqttsn.WillMsg:
		b.handleWillMsg(addr, p)
	case *mqttsn.Register:
		b.handleRegister(addr, p)
	case *mqttsn.Regack:
		b.handleRegack(addr, p)
	case *mqttsn.Publish:
		b.handlePublish(addr, p)
	case *mqttsn.Pubrel:
		b.handlePubrel(addr, p)
	case *mqttsn.Puback:
		b.handlePuback(addr, p)
	case *mqttsn.Pubrec:
		b.handlePubrec(addr, p)
	case *mqttsn.Pubcomp:
		b.handlePubcomp(addr, p)
	case *mqttsn.Subscribe:
		b.handleSubscribe(addr, p)
	case *mqttsn.Unsubscribe:
		b.handleUnsubscribe(addr, p)
	case *mqttsn.Pingreq:
		if !b.touch(addr) {
			// The session is gone (expired by the janitor, typically after
			// an overload window swallowed its pings). Answering with a
			// plain PINGRESP would keep the client in a zombie state —
			// pinging forever, believing it is connected, subscribed to
			// nothing. A DISCONNECT tells it to re-CONNECT instead.
			b.sendTo(addr, &mqttsn.Disconnect{})
			return
		}
		b.sendTo(addr, &mqttsn.Pingresp{})
	case *mqttsn.Disconnect:
		b.handleDisconnect(addr)
	case *mqttsn.SearchGw:
		b.sendTo(addr, &mqttsn.GwInfo{GwID: 1})
	default:
		b.logf("broker: ignoring %s from %s", pkt.Type(), addr)
	}
}

// touch refreshes the session's liveness clock and reports whether the
// address still maps to a live session.
func (b *Broker) touch(addr net.Addr) bool {
	key := addr.String()
	sh := b.shardFor(key)
	sh.mu.Lock()
	s := sh.sessions[key]
	if s != nil {
		s.lastSeen = time.Now()
	}
	sh.mu.Unlock()
	return s != nil
}

// admitConnect is the overload valve: it refuses a CONNECT when the
// accept rate is over the token bucket or a *new* client id would exceed
// the session cap. Reconnects of known client ids are never count-capped
// (they replace, not add), so a full broker can still churn sessions.
func (b *Broker) admitConnect(clientID string) bool {
	if b.connLimit != nil && !b.connLimit.allow() {
		return false
	}
	if b.cfg.MaxSessions > 0 {
		b.clientMu.Lock()
		_, existing := b.byClientID[clientID]
		n := len(b.byClientID)
		b.clientMu.Unlock()
		if !existing && n >= b.cfg.MaxSessions {
			return false
		}
	}
	return true
}

func (b *Broker) handleConnect(addr net.Addr, p *mqttsn.Connect) {
	if !b.admitConnect(p.ClientID) {
		b.ctr.congestionRejected.Add(1)
		b.sendTo(addr, &mqttsn.Connack{ReturnCode: mqttsn.RejectedCongestion})
		return
	}
	if b.cfg.ConnectGate != nil {
		if rc := b.cfg.ConnectGate(p.ClientID); rc != mqttsn.Accepted {
			b.sendTo(addr, &mqttsn.Connack{ReturnCode: rc})
			return
		}
	}
	s := &session{
		clientID:     p.ClientID,
		addr:         addr,
		addrKey:      addr.String(),
		keepalive:    time.Duration(p.Duration) * time.Second,
		lastSeen:     time.Now(),
		subs:         map[string]mqttsn.QoS{},
		groupSubs:    map[string]*consumerGroup{},
		inbound2:     map[uint16]*message{},
		outbound:     map[uint16]*outbound{},
		knownTopics:  map[uint16]bool{},
		pendingReg:   map[uint16][]*message{},
		regFlows:     map[uint16]*regFlow{},
		held:         map[uint64]*message{},
		awaitingWill: p.Flags.Will,
	}
	// Replace any session with the same client id (possibly at an old
	// addr): the old session leaves its groups and its backlog is handed
	// off or released.
	b.clientMu.Lock()
	old := b.byClientID[p.ClientID]
	b.byClientID[p.ClientID] = s
	b.clientMu.Unlock()
	var oldRemains sessionRemains
	if old != nil {
		osh := b.shardFor(old.addrKey)
		osh.mu.Lock()
		if osh.sessions[old.addrKey] == old {
			delete(osh.sessions, old.addrKey)
		}
		oldRemains = b.collectRemainsLocked(old)
		osh.mu.Unlock()
	}
	sh := b.shardFor(s.addrKey)
	sh.mu.Lock()
	sh.sessions[s.addrKey] = s
	sh.mu.Unlock()
	if old != nil {
		b.settleRemains(old, oldRemains)
	}

	if s.awaitingWill {
		b.sendTo(addr, &mqttsn.WillTopicReq{})
		return
	}
	b.sendTo(addr, &mqttsn.Connack{ReturnCode: mqttsn.Accepted})
}

func (b *Broker) handleWillTopic(addr net.Addr, p *mqttsn.WillTopic) {
	key := addr.String()
	sh := b.shardFor(key)
	sh.mu.Lock()
	s := sh.sessions[key]
	if s != nil {
		if s.will == nil {
			s.will = &mqttsn.Will{}
		}
		s.will.Topic = p.Topic
		s.will.QoS = p.Flags.QoS
		s.will.Retain = p.Flags.Retain
		s.lastSeen = time.Now()
	}
	sh.mu.Unlock()
	if s != nil {
		b.sendTo(addr, &mqttsn.WillMsgReq{})
	}
}

func (b *Broker) handleWillMsg(addr net.Addr, p *mqttsn.WillMsg) {
	key := addr.String()
	sh := b.shardFor(key)
	sh.mu.Lock()
	s := sh.sessions[key]
	if s != nil {
		if s.will == nil {
			s.will = &mqttsn.Will{}
		}
		s.will.Payload = p.Msg
		s.awaitingWill = false
		s.lastSeen = time.Now()
	}
	sh.mu.Unlock()
	if s != nil {
		b.sendTo(addr, &mqttsn.Connack{ReturnCode: mqttsn.Accepted})
	}
}

func (b *Broker) handleRegister(addr net.Addr, p *mqttsn.Register) {
	key := addr.String()
	sh := b.shardFor(key)
	sh.mu.Lock()
	s := sh.sessions[key]
	if s != nil {
		s.lastSeen = time.Now()
	}
	sh.mu.Unlock()
	if s == nil || !mqttsn.ValidTopicName(p.TopicName) {
		b.sendTo(addr, &mqttsn.Regack{MsgID: p.MsgID, ReturnCode: mqttsn.RejectedNotSupported})
		return
	}
	id := b.topicID(p.TopicName)
	sh.mu.Lock()
	if sh.sessions[key] == s {
		s.knownTopics[id] = true
	}
	sh.mu.Unlock()
	b.sendTo(addr, &mqttsn.Regack{TopicID: id, MsgID: p.MsgID, ReturnCode: mqttsn.Accepted})
}

func (b *Broker) handleRegack(addr net.Addr, p *mqttsn.Regack) {
	key := addr.String()
	sh := b.shardFor(key)
	sh.mu.Lock()
	s := sh.sessions[key]
	var pubs []*mqttsn.Publish
	var fired []*message
	var rejected []*message
	var saddr net.Addr
	if s != nil {
		s.lastSeen = time.Now()
		if p.ReturnCode == mqttsn.Accepted {
			s.knownTopics[p.TopicID] = true
			// The backlog must reach sendQ under the SAME lock acquisition
			// that flips knownTopics: once the flag is visible, a deliver()
			// for a concurrently released frame takes the known-topic fast
			// path, and if the backlog were flushed message-by-message after
			// unlocking, that new frame would slot into sendQ ahead of the
			// older frames still waiting here and break per-topic order.
			for _, m := range s.pendingReg[p.TopicID] {
				switch m.qos {
				case mqttsn.QoS1, mqttsn.QoS2:
					s.sendQ = append(s.sendQ, m)
				default:
					pubs = append(pubs, &mqttsn.Publish{
						Flags:   mqttsn.Flags{QoS: m.qos, Retain: m.retain},
						TopicID: m.topicID,
						Data:    m.payload,
					})
					fired = append(fired, m) // fire-and-forget: done once sent
				}
			}
			pubs = append(pubs, s.pumpLocked(b, b.cfg.SendWindow)...)
			saddr = s.addr
		} else {
			rejected = s.pendingReg[p.TopicID]
		}
		delete(s.pendingReg, p.TopicID)
		delete(s.regFlows, p.TopicID)
	}
	sh.mu.Unlock()
	for _, pub := range pubs {
		b.sendTo(saddr, pub)
	}
	for _, m := range fired {
		b.putMsg(m)
	}
	// A rejected registration means this subscriber can never take these
	// frames: hand group frames back, drop and count the rest.
	for _, m := range rejected {
		b.settleUndeliverable(s, m)
	}
}

func (b *Broker) handlePublish(addr net.Addr, p *mqttsn.Publish) {
	key := addr.String()
	sh := b.shardFor(key)
	sh.mu.Lock()
	s := sh.sessions[key]
	if s != nil {
		s.lastSeen = time.Now()
	}
	sh.mu.Unlock()
	topic, knownTopic := b.topicName(p.TopicID)
	b.ctr.publishesReceived.Add(1)

	// QoS -1 publishes are allowed without a session (spec: predefined
	// topics); we accept them for already-registered topic ids.
	if s == nil && p.Flags.QoS != mqttsn.QoSMinusOne {
		if p.Flags.QoS == mqttsn.QoS1 || p.Flags.QoS == mqttsn.QoS2 {
			b.sendTo(addr, &mqttsn.Puback{TopicID: p.TopicID, MsgID: p.MsgID, ReturnCode: mqttsn.RejectedNotSupported})
		}
		return
	}
	if !knownTopic {
		if p.Flags.QoS == mqttsn.QoS1 || p.Flags.QoS == mqttsn.QoS2 {
			b.sendTo(addr, &mqttsn.Puback{TopicID: p.TopicID, MsgID: p.MsgID, ReturnCode: mqttsn.RejectedInvalidID})
		}
		return
	}
	fromBridge := s != nil && strings.HasPrefix(s.clientID, BridgeSessionPrefix)
	switch p.Flags.QoS {
	case mqttsn.QoS0, mqttsn.QoSMinusOne:
		msg := b.getMsg()
		*msg = message{topic: topic, topicID: p.TopicID, payload: p.Data, qos: p.Flags.QoS, retain: p.Flags.Retain, bridge: fromBridge}
		b.routeAndRelease(msg)
	case mqttsn.QoS1:
		msg := b.getMsg()
		*msg = message{topic: topic, topicID: p.TopicID, payload: p.Data, qos: p.Flags.QoS, retain: p.Flags.Retain, bridge: fromBridge}
		b.routeAndRelease(msg)
		b.sendTo(addr, &mqttsn.Puback{TopicID: p.TopicID, MsgID: p.MsgID, ReturnCode: mqttsn.Accepted})
	case mqttsn.QoS2:
		sh.mu.Lock()
		if _, dup := s.inbound2[p.MsgID]; dup || s.recentlyReleased(p.MsgID) {
			b.ctr.duplicatesDropped.Add(1)
		} else {
			msg := b.getMsg()
			*msg = message{
				topic: topic, topicID: p.TopicID, payload: p.Data,
				qos: p.Flags.QoS, retain: p.Flags.Retain, seq: s.pubSeq, bridge: fromBridge,
			}
			s.pubSeq++
			s.inbound2[p.MsgID] = msg
		}
		sh.mu.Unlock()
		rec := &mqttsn.Pubrec{}
		rec.MsgID = p.MsgID
		b.sendTo(addr, rec)
	}
}

func (b *Broker) handlePubrel(addr net.Addr, p *mqttsn.Pubrel) {
	key := addr.String()
	sh := b.shardFor(key)
	sh.mu.Lock()
	s := sh.sessions[key]
	var ready []*message
	if s != nil {
		s.lastSeen = time.Now()
		if msg := s.inbound2[p.MsgID]; msg != nil {
			delete(s.inbound2, p.MsgID)
			s.markReleased(p.MsgID)
			// Exactly once (only the first PUBREL finds the message), and
			// in publish-arrival order even when a windowed publisher's
			// PUBRELs arrive scrambled.
			ready = s.releaseInOrder(msg)
		}
	}
	sh.mu.Unlock()
	// Route released frames BEFORE acknowledging the release: once the
	// publisher sees PUBCOMP, each released frame has passed the Forward
	// hook or been enqueued to every local subscriber. The cluster's
	// migration drain relies on this ordering — a forwarding link whose
	// in-flight count hits zero knows its frames are accounted for at the
	// owner. A delayed PUBCOMP just makes the publisher retransmit its
	// PUBREL, which is answered as the duplicate it is.
	for _, m := range ready {
		b.routeAndRelease(m)
	}
	comp := &mqttsn.Pubcomp{}
	comp.MsgID = p.MsgID
	b.sendTo(addr, comp)
}

func (b *Broker) handlePuback(addr net.Addr, p *mqttsn.Puback) {
	key := addr.String()
	sh := b.shardFor(key)
	sh.mu.Lock()
	var pubs []*mqttsn.Publish
	s := sh.sessions[key]
	var done *outbound
	if s != nil {
		s.lastSeen = time.Now()
		if ob, ok := s.outbound[p.MsgID]; ok && ob.state == obAwaitPuback {
			delete(s.outbound, p.MsgID)
			done = ob
			pubs = s.pumpLocked(b, b.cfg.SendWindow)
		}
	}
	sh.mu.Unlock()
	if done != nil {
		b.putMsg(done.msg)
		done.msg = nil
		b.putOutbound(done)
	}
	for _, pub := range pubs {
		b.sendTo(s.addr, pub)
	}
}

func (b *Broker) handlePubrec(addr net.Addr, p *mqttsn.Pubrec) {
	key := addr.String()
	sh := b.shardFor(key)
	sh.mu.Lock()
	s := sh.sessions[key]
	var rels []uint16
	if s != nil {
		s.lastSeen = time.Now()
		if ob, ok := s.outbound[p.MsgID]; ok {
			switch ob.state {
			case obAwaitPubrec:
				ob.state = obRelPending
				ob.retries = 0
				rels = s.releasableLocked()
			case obRelPending:
				// Duplicate PUBREC (our DUP PUBLISH nudged the client):
				// the blocker may have been given up since — try again.
				rels = s.releasableLocked()
			case obAwaitPubcomp:
				rels = append(rels, p.MsgID) // duplicate PUBREC: re-send PUBREL
			}
		}
	}
	sh.mu.Unlock()
	for _, id := range rels {
		rel := &mqttsn.Pubrel{}
		rel.MsgID = id
		b.sendTo(addr, rel)
	}
}

// releasableLocked collects, in enqueue order, the QoS 2 flows whose
// PUBREL may go on the wire now: every flow up to (and not beyond) the
// oldest one still awaiting its PUBREC. Marking them obAwaitPubcomp
// under the shard lock keeps the collection exactly-once; the caller
// sends the returned msgIDs in slice order. All PUBRECs of a session
// arrive on its single shard worker, so collections never race each
// other and PUBRELs hit the wire in seq order.
func (s *session) releasableLocked() []uint16 {
	var cand []*outbound
	for _, ob := range s.outbound {
		if ob.state == obAwaitPubrec || ob.state == obRelPending {
			cand = append(cand, ob)
		}
	}
	sort.Slice(cand, func(i, j int) bool { return cand[i].seq < cand[j].seq })
	var rels []uint16
	for _, ob := range cand {
		if ob.state != obRelPending {
			break // oldest unreleased flow still awaits its PUBREC
		}
		ob.state = obAwaitPubcomp
		ob.lastSent = time.Now()
		ob.retries = 0
		rels = append(rels, ob.msgID)
	}
	return rels
}

func (b *Broker) handlePubcomp(addr net.Addr, p *mqttsn.Pubcomp) {
	key := addr.String()
	sh := b.shardFor(key)
	sh.mu.Lock()
	var pubs []*mqttsn.Publish
	s := sh.sessions[key]
	var done *outbound
	if s != nil {
		s.lastSeen = time.Now()
		if ob, ok := s.outbound[p.MsgID]; ok && ob.state == obAwaitPubcomp {
			delete(s.outbound, p.MsgID)
			done = ob
			pubs = s.pumpLocked(b, b.cfg.SendWindow)
		}
	}
	sh.mu.Unlock()
	if done != nil {
		b.putMsg(done.msg)
		done.msg = nil
		b.putOutbound(done)
	}
	for _, pub := range pubs {
		b.sendTo(s.addr, pub)
	}
}

func (b *Broker) handleSubscribe(addr net.Addr, p *mqttsn.Subscribe) {
	key := addr.String()
	sh := b.shardFor(key)
	sh.mu.Lock()
	s := sh.sessions[key]
	if s == nil {
		sh.mu.Unlock()
		b.sendTo(addr, &mqttsn.Suback{MsgID: p.MsgID, ReturnCode: mqttsn.RejectedNotSupported})
		return
	}
	s.lastSeen = time.Now()
	filter := p.TopicName
	if p.Flags.TopicIDType == mqttsn.TopicPredefined {
		filter, _ = b.topicName(p.TopicID)
	}
	if !mqttsn.ValidFilter(filter) {
		sh.mu.Unlock()
		b.sendTo(addr, &mqttsn.Suback{MsgID: p.MsgID, ReturnCode: mqttsn.RejectedNotSupported})
		return
	}
	grantedQoS := p.Flags.QoS
	if groupName, inner, shared := mqttsn.ParseSharedFilter(filter); shared {
		// Shared subscription: join the consumer group instead of adding
		// an individual subscription. No retained delivery (the group
		// shares one logical subscription; replaying state to every
		// joining member would duplicate it) and no immediate topic id —
		// ids are registered on first delivery.
		g := b.joinGroup(groupName, inner, s, grantedQoS)
		s.groupSubs[filter] = g
		sh.mu.Unlock()
		b.sendTo(addr, &mqttsn.Suback{
			Flags: mqttsn.Flags{QoS: grantedQoS},
			MsgID: p.MsgID, ReturnCode: mqttsn.Accepted,
		})
		return
	}
	_, hadFilter := s.subs[filter]
	s.subs[filter] = p.Flags.QoS
	isBridge := strings.HasPrefix(s.clientID, BridgeSessionPrefix)
	sh.mu.Unlock()
	if !hadFilter && !isBridge && b.cfg.OnSubscribe != nil {
		b.cfg.OnSubscribe(filter)
	}

	var topicID uint16
	if mqttsn.ValidTopicName(filter) { // exact topic: hand out its id now
		topicID = b.topicID(filter)
		sh.mu.Lock()
		if sh.sessions[key] == s {
			s.knownTopics[topicID] = true
		}
		sh.mu.Unlock()
	}
	// Collect matching retained messages for delivery after SUBACK.
	var retained []*message
	b.retMu.Lock()
	for topic, m := range b.retained {
		if mqttsn.TopicMatches(filter, topic) {
			retained = append(retained, m)
		}
	}
	b.retMu.Unlock()

	b.sendTo(addr, &mqttsn.Suback{
		Flags:   mqttsn.Flags{QoS: grantedQoS},
		TopicID: topicID, MsgID: p.MsgID, ReturnCode: mqttsn.Accepted,
	})
	for _, m := range retained {
		out := b.getMsg()
		*out = *m
		if out.qos > grantedQoS {
			out.qos = grantedQoS
		}
		b.deliverOrSettle(s, out)
	}
}

func (b *Broker) handleUnsubscribe(addr net.Addr, p *mqttsn.Unsubscribe) {
	key := addr.String()
	sh := b.shardFor(key)
	sh.mu.Lock()
	var left *consumerGroup
	var s *session
	var dropped string
	if s = sh.sessions[key]; s != nil {
		s.lastSeen = time.Now()
		filter := p.TopicName
		if p.Flags.TopicIDType == mqttsn.TopicPredefined {
			filter, _ = b.topicName(p.TopicID)
		}
		if g, ok := s.groupSubs[filter]; ok {
			delete(s.groupSubs, filter)
			left = g
		} else if _, ok := s.subs[filter]; ok {
			delete(s.subs, filter)
			if !strings.HasPrefix(s.clientID, BridgeSessionPrefix) {
				dropped = filter
			}
		}
	}
	sh.mu.Unlock()
	if left != nil {
		b.leaveGroup(left, s)
	}
	if dropped != "" && b.cfg.OnUnsubscribe != nil {
		b.cfg.OnUnsubscribe(dropped)
	}
	ack := &mqttsn.Unsuback{}
	ack.MsgID = p.MsgID
	b.sendTo(addr, ack)
}

func (b *Broker) handleDisconnect(addr net.Addr) {
	key := addr.String()
	sh := b.shardFor(key)
	sh.mu.Lock()
	s := sh.sessions[key]
	var remains sessionRemains
	if s != nil {
		// Clean disconnect: will is discarded (spec §6.14).
		delete(sh.sessions, key)
		remains = b.collectRemainsLocked(s)
	}
	sh.mu.Unlock()
	if s != nil {
		b.clientMu.Lock()
		if b.byClientID[s.clientID] == s {
			delete(b.byClientID, s.clientID)
		}
		b.clientMu.Unlock()
		b.settleRemains(s, remains)
	}
	b.sendTo(addr, &mqttsn.Disconnect{})
}

// DisconnectClientsPrefix tears down every session whose client id has
// the given prefix, exactly as if each had sent a DISCONNECT: backlogs
// are handed back to their groups or released, and a DISCONNECT is sent
// to the session's address so a live peer learns immediately instead of
// at its next exchange. The cluster uses it to fence a removed node:
// killing its established bridge sessions closes the door its future
// CONNECTs will find barred by the gate. Returns the number of sessions
// dropped.
func (b *Broker) DisconnectClientsPrefix(prefix string) int {
	b.clientMu.Lock()
	var victims []*session
	for clientID, s := range b.byClientID {
		if strings.HasPrefix(clientID, prefix) {
			victims = append(victims, s)
		}
	}
	b.clientMu.Unlock()
	for _, s := range victims {
		sh := b.shardFor(s.addrKey)
		sh.mu.Lock()
		if sh.sessions[s.addrKey] != s {
			sh.mu.Unlock()
			continue // already replaced or expired
		}
		delete(sh.sessions, s.addrKey)
		remains := b.collectRemainsLocked(s)
		sh.mu.Unlock()
		b.clientMu.Lock()
		if b.byClientID[s.clientID] == s {
			delete(b.byClientID, s.clientID)
		}
		b.clientMu.Unlock()
		b.settleRemains(s, remains)
		b.sendTo(s.addr, &mqttsn.Disconnect{})
	}
	return len(victims)
}

// routeAndRelease routes msg, then returns it to the message pool unless
// the retained store took ownership of it. When a Forward hook is set it
// gets first refusal: frames it takes (another node owns the topic, or a
// migration pause is buffering it) never reach local routing, which is
// what keeps cluster delivery exactly-once.
func (b *Broker) routeAndRelease(msg *message) {
	if b.cfg.Forward != nil && !msg.injected {
		if b.cfg.Forward(ForwardFrame{Topic: msg.topic, Payload: msg.payload, QoS: msg.qos, Retain: msg.retain, Bridge: msg.bridge}) {
			b.ctr.forwarded.Add(1)
			b.putMsg(msg)
			return
		}
	}
	if !b.route(msg) {
		b.putMsg(msg)
	}
}

// Submit routes a frame as if a local publisher had just released it,
// bypassing the Forward hook. The cluster uses it to re-enter frames
// that already completed cluster routing: a forwarded frame flushed from
// a migration buffer whose partition this node now owns.
func (b *Broker) Submit(topic string, payload []byte, qos mqttsn.QoS, retain bool) {
	msg := b.getMsg()
	*msg = message{topic: topic, payload: payload, qos: qos, retain: retain}
	if !b.route(msg) {
		b.putMsg(msg)
	}
}

// Inject delivers a frame that arrived over an inter-node bridge link to
// this node's local individual subscribers only: consumer groups, the
// retained store, and bridge sessions are all skipped (the topic's owner
// already handled those), so a publication can neither double-deliver
// nor echo between nodes.
func (b *Broker) Inject(topic string, payload []byte, qos mqttsn.QoS) {
	msg := b.getMsg()
	*msg = message{topic: topic, payload: payload, qos: qos, injected: true}
	b.ctr.injected.Add(1)
	if !b.route(msg) {
		b.putMsg(msg)
	}
}

// PendingForTopics counts QoS 1/2 frames still queued or in flight
// toward this broker's local subscribers whose topic matches. The
// cluster polls it during a partition drain: once the peers' forwarding
// links are idle and this count reaches zero, every frame of the moving
// partitions has been delivered and acknowledged.
func (b *Broker) PendingForTopics(match func(topic string) bool) int {
	n := 0
	for _, sh := range b.shards {
		sh.mu.Lock()
		for _, s := range sh.sessions {
			for _, ob := range s.outbound {
				if ob.msg != nil && match(ob.msg.topic) {
					n++
				}
			}
			for _, m := range s.sendQ {
				if match(m.topic) {
					n++
				}
			}
			for _, pending := range s.pendingReg {
				for _, m := range pending {
					if match(m.topic) {
						n++
					}
				}
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// DetachMatching removes every queued or in-flight QoS 1/2 frame whose
// topic matches from this broker's local subscribers and returns them in
// per-session send order, counting them as Migrated. It is the
// migration drain's escape hatch for a subscriber that stopped
// acknowledging: the frames move to the partition's new owner instead of
// wedging the handoff. A detached in-flight frame may already have
// reached its subscriber (the ack just never came back), so delivery for
// detached frames is at-least-once — same contract as a consumer-group
// member failover.
func (b *Broker) DetachMatching(match func(topic string) bool) []ForwardFrame {
	var out []ForwardFrame
	for _, sh := range b.shards {
		sh.mu.Lock()
		for _, s := range sh.sessions {
			type seqFrame struct {
				seq uint64
				f   ForwardFrame
			}
			var inflight []seqFrame
			for id, ob := range s.outbound {
				if ob.msg == nil || !match(ob.msg.topic) {
					continue
				}
				m := ob.msg
				inflight = append(inflight, seqFrame{ob.seq, ForwardFrame{Topic: m.topic, Payload: m.payload, QoS: m.qos, Retain: m.retain}})
				delete(s.outbound, id)
				ob.msg = nil
				b.putMsg(m)
				b.putOutbound(ob)
			}
			sort.Slice(inflight, func(i, j int) bool { return inflight[i].seq < inflight[j].seq })
			for _, sf := range inflight {
				out = append(out, sf.f)
			}
			if len(s.sendQ) > 0 {
				kept := s.sendQ[:0]
				for _, m := range s.sendQ {
					if match(m.topic) {
						out = append(out, ForwardFrame{Topic: m.topic, Payload: m.payload, QoS: m.qos, Retain: m.retain})
						b.putMsg(m)
					} else {
						kept = append(kept, m)
					}
				}
				for i := len(kept); i < len(s.sendQ); i++ {
					s.sendQ[i] = nil
				}
				s.sendQ = kept
			}
			for id, pending := range s.pendingReg {
				var kept []*message
				for _, m := range pending {
					if match(m.topic) {
						out = append(out, ForwardFrame{Topic: m.topic, Payload: m.payload, QoS: m.qos, Retain: m.retain})
						b.putMsg(m)
					} else {
						kept = append(kept, m)
					}
				}
				if len(kept) == 0 {
					delete(s.pendingReg, id)
					delete(s.regFlows, id)
				} else {
					s.pendingReg[id] = kept
				}
			}
		}
		sh.mu.Unlock()
	}
	b.ctr.migrated.Add(uint64(len(out)))
	return out
}

// route fans a message out to all matching subscribers — every individual
// subscription, plus exactly one member per matching consumer group,
// chosen by the topic-affinity hash — and stores it if retained. It walks
// the shards one at a time, so a hot shard never blocks matching on the
// others. route does not take ownership of msg (each delivery gets its
// own pooled copy); it reports whether the retained store kept msg.
//
// Injected frames (arrived over an inter-node bridge) take a narrower
// path: individual non-bridge subscribers only. The topic's owning node
// already served its consumer groups and retained store, and delivering
// to another bridge session would echo the frame around the cluster.
func (b *Broker) route(msg *message) bool {
	if b.stageRoute != nil {
		if ns, ok := wire.FrameCaptureNS(msg.payload); ok {
			obs.ObserveSince(b.stageRoute, ns)
		}
	}
	stored := false
	if msg.retain && !msg.injected {
		b.retMu.Lock()
		if len(msg.payload) == 0 {
			delete(b.retained, msg.topic)
		} else {
			b.retained[msg.topic] = msg
			stored = true
		}
		b.retMu.Unlock()
	}
	if msg.topicID == 0 {
		msg.topicID = b.topicID(msg.topic)
	}
	type target struct {
		s   *session
		qos mqttsn.QoS
		g   *consumerGroup
	}
	// Stack-backed in the common case (few subscribers per topic).
	var tbuf [8]target
	targets := tbuf[:0]
	for _, sh := range b.shards {
		sh.mu.Lock()
		for _, s := range sh.sessions {
			if msg.injected && strings.HasPrefix(s.clientID, BridgeSessionPrefix) {
				continue
			}
			best := mqttsn.QoS(-2)
			for filter, subQoS := range s.subs {
				if mqttsn.TopicMatches(filter, msg.topic) && subQoS > best {
					best = subQoS
				}
			}
			if best >= -1 {
				q := msg.qos
				if best < q {
					q = best
				}
				targets = append(targets, target{s: s, qos: q})
			}
		}
		sh.mu.Unlock()
	}
	if !msg.injected {
		var gbuf [4]groupTarget
		for _, gt := range b.matchGroups(msg.topic, nil, gbuf[:0]) {
			q := msg.qos
			if gt.qos < q {
				q = gt.qos
			}
			targets = append(targets, target{s: gt.s, qos: q, g: gt.g})
		}
	}
	b.ctr.messagesRouted.Add(uint64(len(targets)))
	for _, t := range targets {
		out := b.getMsg()
		*out = *msg
		out.qos = t.qos
		out.group = t.g
		b.deliverOrSettle(t.s, out)
	}
	return stored
}

// deliverOrSettle delivers msg to s, and settles ownership if the session
// turns out to be dead: group frames go back to their group (with the
// dead member removed so it stops attracting assignments), the rest are
// dropped and counted.
func (b *Broker) deliverOrSettle(s *session, msg *message) {
	if b.deliver(s, msg) {
		return
	}
	if msg.group != nil {
		b.leaveGroup(msg.group, s)
		b.rerouteGroup(msg, s)
	} else {
		b.ctr.backlogDropped.Add(1)
		b.putMsg(msg)
	}
}

// deliver sends one message to one subscriber, respecting its QoS and
// registering the topic first if the client does not know its id. deliver
// takes ownership of msg; it returns false — handing ownership back to
// the caller — when the session is no longer live.
func (b *Broker) deliver(s *session, msg *message) bool {
	sh := b.shardFor(s.addrKey)
	sh.mu.Lock()
	if sh.sessions[s.addrKey] != s {
		sh.mu.Unlock()
		return false
	}
	if !s.knownTopics[msg.topicID] {
		// Queue behind a REGISTER exchange (retransmitted by the janitor
		// until acknowledged or given up).
		pending, already := s.pendingReg[msg.topicID]
		s.pendingReg[msg.topicID] = append(pending, msg)
		addr := s.addr
		topic := msg.topic
		id := msg.topicID
		var regMsgID uint16
		if !already {
			regMsgID = s.allocMsgID()
			s.regFlows[id] = &regFlow{msgID: regMsgID, lastSent: time.Now()}
		}
		sh.mu.Unlock()
		if !already {
			b.sendTo(addr, &mqttsn.Register{TopicID: id, MsgID: regMsgID, TopicName: topic})
		}
		return true
	}
	var pubs []*mqttsn.Publish
	release := false
	switch msg.qos {
	case mqttsn.QoS1, mqttsn.QoS2:
		// Flow-controlled path: enqueue in arrival order, then fill the
		// in-flight window.
		s.sendQ = append(s.sendQ, msg)
		pubs = s.pumpLocked(b, b.cfg.SendWindow)
	default:
		pubs = append(pubs, &mqttsn.Publish{
			Flags:   mqttsn.Flags{QoS: msg.qos, Retain: msg.retain},
			TopicID: msg.topicID,
			Data:    msg.payload,
		})
		release = true // fire-and-forget: done once sent
	}
	addr := s.addr
	sh.mu.Unlock()
	for _, pub := range pubs {
		b.sendTo(addr, pub)
	}
	if release {
		b.putMsg(msg)
	}
	return true
}

// pumpLocked moves queued QoS 1/2 messages into the in-flight window.
// The caller holds the session's shard mutex; the returned packets must be
// sent after unlocking.
func (s *session) pumpLocked(b *Broker, window int) []*mqttsn.Publish {
	var pubs []*mqttsn.Publish
	for len(s.sendQ) > 0 && len(s.outbound) < window {
		msg := s.sendQ[0]
		s.sendQ[0] = nil
		s.sendQ = s.sendQ[1:]
		msgID := s.allocMsgID()
		ob := b.obPool.Get().(*outbound)
		*ob = outbound{msg: msg, msgID: msgID, lastSent: time.Now(), seq: s.sendSeq}
		s.sendSeq++
		if msg.qos == mqttsn.QoS1 {
			ob.state = obAwaitPuback
		} else {
			ob.state = obAwaitPubrec
		}
		s.outbound[msgID] = ob
		pubs = append(pubs, publishPacket(ob))
	}
	if len(s.sendQ) == 0 {
		s.sendQ = nil // release the drained backlog's backing array
	}
	return pubs
}
