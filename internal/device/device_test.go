package device

import (
	"math"
	"testing"
	"time"
)

func TestCPUTimeScaling(t *testing.T) {
	ref := 10 * time.Millisecond
	edge := A8M3.CPUTime(ref)
	if edge <= ref {
		t.Errorf("edge CPU time %v should exceed reference %v", edge, ref)
	}
	ratio := float64(edge) / float64(ref)
	if math.Abs(ratio-17.4) > 0.1 {
		t.Errorf("edge/cloud CPU ratio = %v, want ~17.4", ratio)
	}
	if got := CloudServer.CPUTime(ref); got != ref {
		t.Errorf("cloud CPU time = %v, want %v", got, ref)
	}
}

func TestTimeOnAir(t *testing.T) {
	// 250 kbit/s = 31250 B/s; 3125 bytes = 100ms.
	got := A8M3.TimeOnAir(3125)
	if math.Abs(got.Seconds()-0.1) > 1e-9 {
		t.Errorf("TimeOnAir = %v, want 100ms", got)
	}
	if A8M3.TimeOnAir(0) != 0 {
		t.Error("TimeOnAir(0) should be 0")
	}
}

func TestEnergyMeterIdleOnly(t *testing.T) {
	m := NewEnergyMeter(A8M3)
	m.Elapsed = 10 * time.Second
	wantE := A8M3.IdleWatts * 10
	if got := m.EnergyJoules(); math.Abs(got-wantE) > 1e-9 {
		t.Errorf("idle energy = %v, want %v", got, wantE)
	}
	if got := m.AvgPowerWatts(); math.Abs(got-A8M3.IdleWatts) > 1e-9 {
		t.Errorf("idle power = %v, want %v", got, A8M3.IdleWatts)
	}
}

func TestEnergyMeterCaptureIncreasesPower(t *testing.T) {
	base := NewEnergyMeter(A8M3)
	base.Elapsed = 50 * time.Second

	capture := NewEnergyMeter(A8M3)
	capture.Elapsed = 50 * time.Second
	capture.AddCPU(1 * time.Second) // 2% CPU
	for i := 0; i < 200; i++ {      // 4 msgs/s of ~900B
		capture.AddTx(900)
	}

	pBase, pCap := base.AvgPowerWatts(), capture.AvgPowerWatts()
	if pCap <= pBase {
		t.Fatalf("capture power %v should exceed baseline %v", pCap, pBase)
	}
	overhead := (pCap - pBase) / pBase
	// The paper reports 2.58% for ProvLight-like activity; accept a band.
	if overhead < 0.005 || overhead > 0.10 {
		t.Errorf("power overhead = %.2f%%, want between 0.5%% and 10%%", overhead*100)
	}
}

func TestEnergyMeterBurstCostMatters(t *testing.T) {
	// Same bytes, more bursts => more energy (Fig. 6d rationale).
	few := NewEnergyMeter(A8M3)
	few.Elapsed = 10 * time.Second
	few.AddTx(10000)

	many := NewEnergyMeter(A8M3)
	many.Elapsed = 10 * time.Second
	for i := 0; i < 100; i++ {
		many.AddTx(100)
	}
	if many.EnergyJoules() <= few.EnergyJoules() {
		t.Error("many small bursts should cost more energy than one large burst")
	}
}

func TestUtilizationAndRate(t *testing.T) {
	m := NewEnergyMeter(A8M3)
	m.Elapsed = 4 * time.Second
	m.AddCPU(1 * time.Second)
	m.AddTx(2000)
	m.AddTx(2000)
	if got := m.CPUUtilization(); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("CPUUtilization = %v, want 0.25", got)
	}
	if got := m.NetworkRate(); math.Abs(got-1000) > 1e-9 {
		t.Errorf("NetworkRate = %v, want 1000 B/s", got)
	}
	empty := NewEnergyMeter(A8M3)
	if empty.AvgPowerWatts() != 0 || empty.CPUUtilization() != 0 || empty.NetworkRate() != 0 {
		t.Error("zero-elapsed meter should report zeros")
	}
}
