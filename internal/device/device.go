// Package device models the hardware platforms of the paper's evaluation:
// the FIT IoT-LAB A8-M3 edge board and the Grid'5000 "gros" cloud server.
//
// Profiles capture the two things the experiments need: a CPU speed factor
// (how much slower provenance-capture CPU work runs on the edge board than
// on the reference server) and a power model (idle draw, incremental CPU
// draw, and radio transmission energy) used to reproduce Fig. 6d.
package device

import "time"

// Profile describes one hardware platform.
type Profile struct {
	Name string

	// CPUSpeedFactor is the platform's speed executing capture-library
	// code relative to the reference cloud server (1.0). The A8-M3's
	// 600 MHz in-order Cortex-A8 running the interpreted capture stack is
	// ~17x slower than the Xeon Gold reference for this workload
	// (calibrated from Table II vs Table X of the paper).
	CPUSpeedFactor float64

	// MemoryBytes is the total RAM, used to express memory overhead as a
	// percentage (Fig. 6b).
	MemoryBytes int64

	// IdleWatts is the platform draw while the synthetic workload runs
	// without provenance capture (the paper's tasks are timed waits, so
	// the no-capture baseline is effectively idle draw).
	IdleWatts float64
	// CPUActiveWatts is the additional draw at 100% CPU utilization.
	CPUActiveWatts float64
	// RadioTxWatts is the additional draw while the network interface
	// transmits (time-on-air at RadioBitrateBps).
	RadioTxWatts float64
	// RadioWakeJoules is the fixed energy cost of one uplink transmission
	// burst (interface wake-up, framing, MAC overhead), independent of
	// size. This term is why protocols that send many small messages
	// draw more power at equal byte volume (Fig. 6d discussion).
	RadioWakeJoules float64
	// RadioBitrateBps is the interface bitrate used for time-on-air
	// energy accounting (the A8-M3's 802.15.4 radio: 250 kbit/s).
	RadioBitrateBps int64
}

// A8M3 is the FIT IoT-LAB A8-M3 node: ARM Cortex-A8 @ 600 MHz, 256 MB RAM,
// 802.15.4 radio, 3.7 V LiPo battery (§III-A(e)).
var A8M3 = Profile{
	Name:            "iotlab-a8-m3",
	CPUSpeedFactor:  1.0 / 17.4,
	MemoryBytes:     256 << 20,
	IdleWatts:       1.394, // measured baseline implied by Fig. 6d percentages
	CPUActiveWatts:  0.20,
	RadioTxWatts:    0.22,
	RadioWakeJoules: 0.0027,
	RadioBitrateBps: 250e3,
}

// CloudServer is the Grid'5000 "gros" node: Intel Xeon Gold 5220 @ 2.20 GHz,
// 96 GB RAM, wired Ethernet (§III-A(e)). The power model is not exercised
// by the paper's figures (power is only measured on the edge), but is
// populated with representative values for completeness.
var CloudServer = Profile{
	Name:            "g5k-gros",
	CPUSpeedFactor:  1.0,
	MemoryBytes:     96 << 30,
	IdleWatts:       65,
	CPUActiveWatts:  125,
	RadioTxWatts:    2,
	RadioWakeJoules: 0,
	RadioBitrateBps: 1e9,
}

// CPUTime converts CPU work expressed in reference-server seconds to wall
// time on this platform.
func (p Profile) CPUTime(ref time.Duration) time.Duration {
	if p.CPUSpeedFactor <= 0 {
		return ref
	}
	return time.Duration(float64(ref) / p.CPUSpeedFactor)
}

// TimeOnAir returns the interface transmission time for n payload bytes.
func (p Profile) TimeOnAir(n int64) time.Duration {
	if p.RadioBitrateBps <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n*8) / float64(p.RadioBitrateBps) * float64(time.Second))
}

// EnergyMeter accumulates the activity of one device over an experiment run
// and evaluates the profile's power model.
type EnergyMeter struct {
	Profile  Profile
	CPUBusy  time.Duration // time the CPU spent on capture work
	TxBytes  int64         // payload bytes transmitted
	TxBursts int64         // number of uplink transmissions
	RxBytes  int64         // bytes received (acknowledgements etc.)
	Elapsed  time.Duration // total wall time of the run
}

// NewEnergyMeter returns a meter for the given profile.
func NewEnergyMeter(p Profile) *EnergyMeter {
	return &EnergyMeter{Profile: p}
}

// AddCPU records d of busy CPU time.
func (m *EnergyMeter) AddCPU(d time.Duration) { m.CPUBusy += d }

// AddTx records one transmission burst of n bytes.
func (m *EnergyMeter) AddTx(n int) {
	m.TxBytes += int64(n)
	m.TxBursts++
}

// AddRx records n received bytes.
func (m *EnergyMeter) AddRx(n int) { m.RxBytes += int64(n) }

// EnergyJoules evaluates the power model:
//
//	E = idle*T + cpuActive*busy + radioTx*timeOnAir(bytes) + wake*bursts
func (m *EnergyMeter) EnergyJoules() float64 {
	p := m.Profile
	e := p.IdleWatts * m.Elapsed.Seconds()
	e += p.CPUActiveWatts * m.CPUBusy.Seconds()
	e += p.RadioTxWatts * p.TimeOnAir(m.TxBytes).Seconds()
	e += p.RadioWakeJoules * float64(m.TxBursts)
	return e
}

// AvgPowerWatts returns mean power over the elapsed time, or 0 if no time
// has elapsed.
func (m *EnergyMeter) AvgPowerWatts() float64 {
	if m.Elapsed <= 0 {
		return 0
	}
	return m.EnergyJoules() / m.Elapsed.Seconds()
}

// CPUUtilization returns the capture CPU busy fraction of elapsed time.
func (m *EnergyMeter) CPUUtilization() float64 {
	if m.Elapsed <= 0 {
		return 0
	}
	return float64(m.CPUBusy) / float64(m.Elapsed)
}

// NetworkRate returns transmitted payload bytes per second of elapsed time.
func (m *EnergyMeter) NetworkRate() float64 {
	if m.Elapsed <= 0 {
		return 0
	}
	return float64(m.TxBytes) / m.Elapsed.Seconds()
}
