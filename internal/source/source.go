// Package source defines the backend-agnostic provenance read interface
// of ProvLight: one query surface (Select/Task/Workflows) that every
// provenance store in the repository implements, so analysis code written
// against Source runs identically whether the records live in an in-memory
// target, the local DfAnalyzer column store, or a remote DfAnalyzer server
// reached over HTTP.
//
// The paper's motivation for capturing provenance is answering queries
// (§I: latest-epoch metrics, top-k accuracy); HyProv (arXiv:2511.07574)
// argues for a single query surface over heterogeneous provenance stores.
// This package is that surface: internal/queries is written purely against
// Source, and the top-level provlight package re-exports every type here.
package source

import (
	"context"
	"errors"
	"time"
)

// Op is a comparison operator in a query predicate.
type Op string

// Predicate operators.
const (
	Eq Op = "="
	Ne Op = "!="
	Lt Op = "<"
	Le Op = "<="
	Gt Op = ">"
	Ge Op = ">="
)

// Pred filters rows on one attribute.
type Pred struct {
	Attr  string `json:"attr"`
	Op    Op     `json:"op"`
	Value any    `json:"value"`
}

// Query selects rows from one set of a dataflow: WHERE predicates are
// conjunctive; OrderBy/Desc/Limit give top-k behaviour. The JSON encoding
// is the wire format of the DfAnalyzer server's POST /query endpoint.
type Query struct {
	Dataflow string   `json:"dataflow"`
	Set      string   `json:"set"`
	Where    []Pred   `json:"where,omitempty"`
	Project  []string `json:"project,omitempty"`
	OrderBy  string   `json:"order_by,omitempty"`
	Desc     bool     `json:"desc,omitempty"`
	Limit    int      `json:"limit,omitempty"`
}

// Row is one query result with attribute values plus the producing task id
// under "task_id".
type Row map[string]any

// TaskInfo is the backend-agnostic task-catalog entry: the merged
// begin/end lifecycle of one task, independent of any backend's native
// task message type.
type TaskInfo struct {
	ID             string     `json:"id"`
	Transformation string     `json:"transformation"`
	Status         string     `json:"status"`
	Dependencies   []string   `json:"dependencies,omitempty"`
	StartTime      *time.Time `json:"start_time,omitempty"`
	EndTime        *time.Time `json:"end_time,omitempty"`
}

// Elapsed returns EndTime - StartTime, or 0 if either end is unknown.
func (t *TaskInfo) Elapsed() time.Duration {
	if t == nil || t.StartTime == nil || t.EndTime == nil {
		return 0
	}
	return t.EndTime.Sub(*t.StartTime)
}

// ErrNotFound reports that a looked-up entity does not exist in the
// source. Match with errors.Is.
var ErrNotFound = errors.New("source: not found")

// Source is the read side of a provenance store. Implementations exist for
// the in-memory target (translate.MemoryTarget), the local DfAnalyzer
// column store (dfanalyzer.Store), and the remote DfAnalyzer HTTP client
// (dfanalyzer.Client); a query written against Source produces identical
// results on all of them given the same ingested records.
//
// Every method honours ctx cancellation; remote implementations also use
// it as the request deadline.
type Source interface {
	// Select runs a predicate/order/limit query against one set.
	Select(ctx context.Context, q Query) ([]Row, error)
	// Task returns the catalog entry for one task id, or an error
	// wrapping ErrNotFound.
	Task(ctx context.Context, dataflow, id string) (*TaskInfo, error)
	// Tasks lists every catalog entry of a dataflow in ingestion order:
	// one call fetches the whole catalog, so joins against query results
	// cost one round trip on remote backends instead of one per row.
	Tasks(ctx context.Context, dataflow string) ([]TaskInfo, error)
	// Workflows lists the dataflow tags provenance is recorded under,
	// sorted.
	Workflows(ctx context.Context) ([]string, error)
}
