package netem

import (
	"net"
	"testing"
	"testing/quick"
	"time"
)

func TestWireBytes(t *testing.T) {
	l := Link{OverheadBytes: 40, MTU: 1000}
	cases := []struct{ in, want int }{
		{0, 0},
		{1, 41},
		{1000, 1040},
		{1001, 1081}, // two segments
		{2500, 2620}, // three segments
	}
	for _, c := range cases {
		if got := l.WireBytes(c.in); got != c.want {
			t.Errorf("WireBytes(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestWireBytesNoMTU(t *testing.T) {
	l := Link{OverheadBytes: 28}
	if got := l.WireBytes(5000); got != 5028 {
		t.Errorf("WireBytes = %d, want 5028", got)
	}
}

func TestTxTime(t *testing.T) {
	l := Link{BandwidthBps: 8000} // 1000 bytes/sec
	// 100 bytes, no overhead: 100ms.
	if got := l.TxTime(100); got != 100*time.Millisecond {
		t.Errorf("TxTime = %v, want 100ms", got)
	}
	if got := (Link{}).TxTime(100); got != 0 {
		t.Errorf("unlimited link TxTime = %v, want 0", got)
	}
	if got := l.TxTime(0); got != 0 {
		t.Errorf("TxTime(0) = %v, want 0", got)
	}
}

func TestRTT(t *testing.T) {
	if got := GigabitEdge.RTT(); got != 23*time.Millisecond {
		t.Errorf("edge RTT = %v, want 23ms (paper's netem delay budget)", got)
	}
}

func TestShortFlowFactor(t *testing.T) {
	if f := GigabitEdge.ShortFlowFactor(1500); f != 1.0 {
		t.Errorf("fast link factor = %v, want 1.0", f)
	}
	slow := Constrained25Kbit
	if f := slow.ShortFlowFactor(1500); f != 1.45 {
		t.Errorf("short slow-flow factor = %v, want 1.45", f)
	}
	if f := slow.ShortFlowFactor(64 * 1024); f != 1.45 {
		t.Errorf("bulk slow-flow factor = %v, want 1.45 (window never opens at 25 Kbit/23 ms)", f)
	}
	if f := slow.ShortFlowFactor(0); f != 1.0 {
		t.Errorf("zero-byte flow factor = %v, want 1.0", f)
	}
}

func TestRequestResponseTimeDominatedByBandwidthWhenSlow(t *testing.T) {
	fast := GigabitEdge.RequestResponseTime(1500, 200)
	slow := Constrained25Kbit.RequestResponseTime(1500, 200)
	if fast >= slow {
		t.Errorf("fast=%v should be < slow=%v", fast, slow)
	}
	// On the fast link the exchange is ~RTT.
	if fast < GigabitEdge.RTT() || fast > GigabitEdge.RTT()+time.Millisecond {
		t.Errorf("fast exchange = %v, want ~%v", fast, GigabitEdge.RTT())
	}
	// On 25 Kbit, 1.7 KB at 1.45x inflation is ~0.85s.
	if slow < 500*time.Millisecond || slow > 2*time.Second {
		t.Errorf("slow exchange = %v, want ~0.85s", slow)
	}
}

// Property: TxTime is monotone in payload size and additive within one
// segment (no MTU crossing).
func TestTxTimeMonotoneProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		l := Link{BandwidthBps: 1e6, OverheadBytes: 40, MTU: 1460}
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return l.TxTime(x) <= l.TxTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWrapConnShapesWrites(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	go func() {
		buf := make([]byte, 1024)
		for {
			if _, err := c2.Read(buf); err != nil {
				return
			}
		}
	}()
	// 8000 bps = 1000 B/s; 100 bytes should take ~100ms.
	wrapped := WrapConn(c1, Profile{BandwidthBps: 8000})
	start := time.Now()
	if _, err := wrapped.Write(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 80*time.Millisecond {
		t.Errorf("write took %v, want >= ~100ms of pacing", elapsed)
	}
}

func TestWrapPacketConnLossIsDeterministic(t *testing.T) {
	recvCount := func(seed int64) int {
		server, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer server.Close()
		client, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lossy := WrapPacketConn(client, Profile{LossRate: 0.5, Seed: seed})
		defer lossy.Close()

		done := make(chan int)
		go func() {
			n := 0
			buf := make([]byte, 64)
			for {
				server.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
				if _, _, err := server.ReadFrom(buf); err != nil {
					done <- n
					return
				}
				n++
			}
		}()
		for i := 0; i < 40; i++ {
			if _, err := lossy.WriteTo([]byte{byte(i)}, server.LocalAddr()); err != nil {
				t.Fatal(err)
			}
		}
		return <-done
	}
	a := recvCount(7)
	b := recvCount(7)
	if a != b {
		t.Errorf("same seed produced different delivery counts: %d vs %d", a, b)
	}
	if a == 0 || a == 40 {
		t.Errorf("50%% loss delivered %d/40 packets; expected some but not all", a)
	}
}

func TestWrapPacketConnDuplication(t *testing.T) {
	server, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dup := WrapPacketConn(client, Profile{DupRate: 1.0, Seed: 3})
	defer dup.Close()

	if _, err := dup.WriteTo([]byte("x"), server.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	got := 0
	buf := make([]byte, 16)
	for {
		server.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		if _, _, err := server.ReadFrom(buf); err != nil {
			break
		}
		got++
	}
	if got != 2 {
		t.Errorf("DupRate=1 delivered %d copies, want 2", got)
	}
}
