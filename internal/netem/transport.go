package netem

import (
	"net"

	"github.com/provlight/provlight/internal/transport"
)

// Transport wraps an inner transport.Transport so every dialed
// connection's writes are shaped by a Profile: the device/client side of
// a link sees the configured delay, bandwidth, loss, and duplication,
// whatever substrate (UDP, loopback, TCP stream) carries the packets.
// Listen is passed through unshaped — shaping the uplink is enough to
// model a constrained edge link, and the server side stays observable.
type Transport struct {
	inner   transport.Transport
	profile Profile
}

// WrapTransport shapes t's dialed connections with p.
func WrapTransport(t transport.Transport, p Profile) *Transport {
	return &Transport{inner: t, profile: p}
}

// Listen implements transport.Transport (unshaped pass-through).
func (t *Transport) Listen(addr string) (net.PacketConn, error) {
	return t.inner.Listen(addr)
}

// Dial implements transport.Transport, wrapping the dialed conn in the
// shaper.
func (t *Transport) Dial(addr string) (net.PacketConn, net.Addr, error) {
	pc, gw, err := t.inner.Dial(addr)
	if err != nil {
		return nil, nil, err
	}
	return WrapPacketConn(pc, t.profile), gw, nil
}
