package netem

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// Profile configures a real-traffic shaper. It is the runtime counterpart
// of Link for integration tests and examples running on localhost.
type Profile struct {
	// BandwidthBps limits write throughput (bits/second); 0 = unlimited.
	BandwidthBps int64
	// Delay is added to every write (one-way propagation).
	Delay time.Duration
	// LossRate drops outgoing packets with this probability (PacketConn only).
	LossRate float64
	// DupRate duplicates outgoing packets with this probability
	// (PacketConn only), for exactly-once delivery testing.
	DupRate float64
	// Seed makes loss/duplication deterministic; 0 uses a fixed default.
	Seed int64
}

func (p Profile) rng() *rand.Rand {
	seed := p.Seed
	if seed == 0 {
		seed = 42
	}
	return rand.New(rand.NewSource(seed))
}

// shaper paces writes to the configured bandwidth. It tracks the time the
// virtual transmitter becomes free so bursts queue behind each other.
type shaper struct {
	mu       sync.Mutex
	prof     Profile
	nextFree time.Time
	rng      *rand.Rand
}

func newShaper(p Profile) *shaper {
	return &shaper{prof: p, rng: p.rng()}
}

// reserve blocks the caller for the serialization (bandwidth) time of n
// bytes and returns the instant the last bit leaves the transmitter.
// Propagation delay is NOT included: like a real link, it delays arrival
// without occupying the sender.
func (s *shaper) reserve(n int) time.Time {
	s.mu.Lock()
	now := time.Now()
	start := s.nextFree
	if start.Before(now) {
		start = now
	}
	var tx time.Duration
	if s.prof.BandwidthBps > 0 {
		tx = time.Duration(float64(n*8) / float64(s.prof.BandwidthBps) * float64(time.Second))
	}
	s.nextFree = start.Add(tx)
	end := s.nextFree
	s.mu.Unlock()
	if wait := end.Sub(now); wait > 0 {
		time.Sleep(wait)
	}
	return end
}

// pace blocks until n bytes have been "serialized" onto the link and the
// propagation delay has elapsed (stream-conn semantics, where the write
// models the full blocking exchange leg).
func (s *shaper) pace(n int) {
	end := s.reserve(n).Add(s.prof.Delay)
	if wait := time.Until(end); wait > 0 {
		time.Sleep(wait)
	}
}

// roll returns a deterministic pseudo-random sample in [0,1).
func (s *shaper) roll() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.Float64()
}

// Conn wraps a net.Conn, shaping writes.
type Conn struct {
	net.Conn
	sh *shaper
}

// WrapConn returns c with writes shaped by profile p. Loss and duplication
// are ignored for stream connections.
func WrapConn(c net.Conn, p Profile) *Conn {
	return &Conn{Conn: c, sh: newShaper(p)}
}

// Write blocks for the modeled serialization + propagation time, then
// forwards the bytes.
func (c *Conn) Write(b []byte) (int, error) {
	c.sh.pace(len(b))
	return c.Conn.Write(b)
}

// PacketConn wraps a net.PacketConn, shaping, dropping, and duplicating
// outgoing datagrams. Bandwidth pacing blocks the writer (serialization
// occupies the transmitter), but propagation delay is applied off the
// caller's goroutine, like real tc/netem: concurrent senders pipeline
// through the latency instead of serializing on it.
type PacketConn struct {
	net.PacketConn
	sh *shaper

	// delayQ feeds the delivery goroutine when Delay > 0; datagrams are
	// released in enqueue order once their arrival time passes.
	delayQ    chan delayedDatagram
	closeOnce sync.Once
	closed    chan struct{}
}

type delayedDatagram struct {
	data []byte
	addr net.Addr
	due  time.Time
}

// WrapPacketConn returns pc with writes shaped by profile p.
func WrapPacketConn(pc net.PacketConn, p Profile) *PacketConn {
	c := &PacketConn{PacketConn: pc, sh: newShaper(p), closed: make(chan struct{})}
	if p.Delay > 0 {
		c.delayQ = make(chan delayedDatagram, 1024)
		go c.deliverLoop()
	}
	return c
}

// deliverLoop releases queued datagrams when their propagation delay has
// elapsed. Due times are non-decreasing for a single writer, so FIFO
// release preserves send order.
func (c *PacketConn) deliverLoop() {
	for {
		select {
		case <-c.closed:
			return
		case d := <-c.delayQ:
			if wait := time.Until(d.due); wait > 0 {
				time.Sleep(wait)
			}
			c.PacketConn.WriteTo(d.data, d.addr)
		}
	}
}

// SetReadBuffer forwards to the underlying socket when it supports it
// (shaping happens on the write side; reads hit the raw socket directly).
func (c *PacketConn) SetReadBuffer(bytes int) error {
	if rb, ok := c.PacketConn.(interface{ SetReadBuffer(int) error }); ok {
		return rb.SetReadBuffer(bytes)
	}
	return nil
}

// Close stops the delivery goroutine (dropping any datagrams still "in
// flight", as a dying link would) and closes the underlying socket.
func (c *PacketConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.PacketConn.Close()
}

// WriteTo applies loss/duplication, blocks for the serialization time, and
// schedules delivery after the propagation delay. Dropped datagrams report
// success, as a lossy network would.
func (c *PacketConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	if c.sh.prof.LossRate > 0 && c.sh.roll() < c.sh.prof.LossRate {
		return len(b), nil // silently dropped
	}
	dup := c.sh.prof.DupRate > 0 && c.sh.roll() < c.sh.prof.DupRate
	txEnd := c.sh.reserve(len(b))
	if c.delayQ == nil {
		n, err := c.PacketConn.WriteTo(b, addr)
		if err != nil {
			return n, err
		}
		if dup {
			if _, derr := c.PacketConn.WriteTo(b, addr); derr != nil {
				return n, nil // duplicate failures are invisible to the sender
			}
		}
		return n, nil
	}
	// The caller may reuse b as soon as we return; the in-flight copy owns
	// its own storage.
	d := delayedDatagram{data: append([]byte(nil), b...), addr: addr, due: txEnd.Add(c.sh.prof.Delay)}
	copies := 1
	if dup {
		copies = 2
	}
	for i := 0; i < copies; i++ {
		select {
		case c.delayQ <- d:
		case <-c.closed:
			return 0, net.ErrClosed
		}
	}
	return len(b), nil
}
