package netem

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// Profile configures a real-traffic shaper. It is the runtime counterpart
// of Link for integration tests and examples running on localhost.
type Profile struct {
	// BandwidthBps limits write throughput (bits/second); 0 = unlimited.
	BandwidthBps int64
	// Delay is added to every write (one-way propagation).
	Delay time.Duration
	// LossRate drops outgoing packets with this probability (PacketConn only).
	LossRate float64
	// DupRate duplicates outgoing packets with this probability
	// (PacketConn only), for exactly-once delivery testing.
	DupRate float64
	// Seed makes loss/duplication deterministic; 0 uses a fixed default.
	Seed int64
}

func (p Profile) rng() *rand.Rand {
	seed := p.Seed
	if seed == 0 {
		seed = 42
	}
	return rand.New(rand.NewSource(seed))
}

// shaper paces writes to the configured bandwidth. It tracks the time the
// virtual transmitter becomes free so bursts queue behind each other.
type shaper struct {
	mu       sync.Mutex
	prof     Profile
	nextFree time.Time
	rng      *rand.Rand
}

func newShaper(p Profile) *shaper {
	return &shaper{prof: p, rng: p.rng()}
}

// pace blocks until n bytes have been "serialized" onto the link and the
// propagation delay has elapsed.
func (s *shaper) pace(n int) {
	var wait time.Duration
	s.mu.Lock()
	now := time.Now()
	start := s.nextFree
	if start.Before(now) {
		start = now
	}
	var tx time.Duration
	if s.prof.BandwidthBps > 0 {
		tx = time.Duration(float64(n*8) / float64(s.prof.BandwidthBps) * float64(time.Second))
	}
	s.nextFree = start.Add(tx)
	wait = s.nextFree.Add(s.prof.Delay).Sub(now)
	s.mu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}
}

// roll returns a deterministic pseudo-random sample in [0,1).
func (s *shaper) roll() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.Float64()
}

// Conn wraps a net.Conn, shaping writes.
type Conn struct {
	net.Conn
	sh *shaper
}

// WrapConn returns c with writes shaped by profile p. Loss and duplication
// are ignored for stream connections.
func WrapConn(c net.Conn, p Profile) *Conn {
	return &Conn{Conn: c, sh: newShaper(p)}
}

// Write blocks for the modeled serialization + propagation time, then
// forwards the bytes.
func (c *Conn) Write(b []byte) (int, error) {
	c.sh.pace(len(b))
	return c.Conn.Write(b)
}

// PacketConn wraps a net.PacketConn, shaping, dropping, and duplicating
// outgoing datagrams.
type PacketConn struct {
	net.PacketConn
	sh *shaper
}

// WrapPacketConn returns pc with writes shaped by profile p.
func WrapPacketConn(pc net.PacketConn, p Profile) *PacketConn {
	return &PacketConn{PacketConn: pc, sh: newShaper(p)}
}

// WriteTo applies loss/duplication and paces the datagram before sending.
// Dropped datagrams report success, as a lossy network would.
func (c *PacketConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	if c.sh.prof.LossRate > 0 && c.sh.roll() < c.sh.prof.LossRate {
		return len(b), nil // silently dropped
	}
	c.sh.pace(len(b))
	n, err := c.PacketConn.WriteTo(b, addr)
	if err != nil {
		return n, err
	}
	if c.sh.prof.DupRate > 0 && c.sh.roll() < c.sh.prof.DupRate {
		if _, derr := c.PacketConn.WriteTo(b, addr); derr != nil {
			return n, nil // duplicate failures are invisible to the sender
		}
	}
	return n, nil
}
