// Package netem emulates Edge-to-Cloud network conditions.
//
// The paper's experimental setup (Fig. 5) interposes an emulated network
// between the 64 FIT IoT-LAB devices and the Grid'5000 cloud server:
// bandwidth 1 Gbit or 25 Kbit, delay 23 ms. E2Clab realizes this with Linux
// tc/netem; this package provides the same first-order behaviour twice over:
//
//   - Link: an analytic model used by the discrete-event simulator
//     (serialization delay, propagation delay, per-packet framing overhead,
//     and a short-TCP-flow inefficiency factor for request/response traffic
//     on slow links);
//   - Conn/PacketConn wrappers: real net.Conn / net.PacketConn shapers used
//     by integration tests and examples, with optional loss and duplication
//     injection for exactly-once (QoS 2) testing.
package netem

import "time"

// Link models a point-to-point network path.
type Link struct {
	// BandwidthBps is the bottleneck bandwidth in bits per second.
	// Zero means unlimited.
	BandwidthBps int64
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// OverheadBytes is per-packet framing added on the wire (IP+UDP = 28,
	// IP+TCP = 40, plus link framing).
	OverheadBytes int
	// MTU is the maximum payload per packet; larger payloads are segmented
	// and each segment pays OverheadBytes. Zero means no segmentation.
	MTU int
}

// Common links from the paper's experimental setup (Fig. 5). The paper's
// "delay: 23ms" is the round-trip budget E2Clab imposes between Edge and
// Cloud, so Delay (one-way) is half that.
var (
	// GigabitEdge is the default Edge-to-Cloud path: 1 Gbit, 23 ms RTT.
	GigabitEdge = Link{BandwidthBps: 1e9, Delay: 11500 * time.Microsecond, OverheadBytes: 40, MTU: 1460}
	// Constrained25Kbit is the low-bandwidth scenario of Tables III/VIII.
	Constrained25Kbit = Link{BandwidthBps: 25e3, Delay: 11500 * time.Microsecond, OverheadBytes: 40, MTU: 1460}
	// CloudLAN is the Grid'5000-internal path used for Table X
	// (two servers on the same site).
	CloudLAN = Link{BandwidthBps: 1e9, Delay: 100 * time.Microsecond, OverheadBytes: 40, MTU: 1460}
)

// WireBytes returns the number of bytes that actually cross the wire for a
// payload of n bytes, accounting for segmentation framing.
func (l Link) WireBytes(n int) int {
	if n <= 0 {
		return 0
	}
	segments := 1
	if l.MTU > 0 {
		segments = (n + l.MTU - 1) / l.MTU
	}
	return n + segments*l.OverheadBytes
}

// TxTime returns the serialization (transmission) delay for a payload of n
// bytes: wire bytes divided by bandwidth. Propagation delay is not included.
func (l Link) TxTime(n int) time.Duration {
	if l.BandwidthBps <= 0 || n <= 0 {
		return 0
	}
	bits := float64(l.WireBytes(n)) * 8
	return time.Duration(bits / float64(l.BandwidthBps) * float64(time.Second))
}

// RTT returns the round-trip propagation delay.
func (l Link) RTT() time.Duration { return 2 * l.Delay }

// ShortFlowFactor is the effective inflation of transmitted bytes for a
// short, fresh request/response TCP exchange relative to a long-lived bulk
// transfer on the same link. On fast links it is ~1; on very slow links,
// slow-start, delayed ACKs and header-per-segment costs make a short flow
// markedly less efficient than bulk. Calibrated against the paper's
// Table III (ProvLake, 0 grouping, 25 Kbit: 321% overhead).
func (l Link) ShortFlowFactor(flowBytes int) float64 {
	if l.BandwidthBps >= 10e6 {
		return 1.0
	}
	// Below ~10 Mbit, per-segment ACK stalls and slow-start make TCP
	// request/response flows ~45% less efficient than raw serialization;
	// with a 23 ms RTT at 25 Kbit the window never opens far enough for
	// size to amortize this away.
	if flowBytes > 0 {
		return 1.45
	}
	return 1.0
}

// RequestResponseTime returns the modeled blocking time of one HTTP 1.1
// request/response exchange over the link on an established (kept-alive)
// connection: request serialization, propagation both ways, and response
// serialization, with the short-flow inefficiency applied.
func (l Link) RequestResponseTime(reqBytes, respBytes int) time.Duration {
	f := l.ShortFlowFactor(reqBytes + respBytes)
	tx := time.Duration(float64(l.TxTime(reqBytes)+l.TxTime(respBytes)) * f)
	return tx + l.RTT()
}
