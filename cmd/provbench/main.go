// Command provbench regenerates every table and figure of the paper's
// evaluation (Tables II, III, VII, VIII, IX, X; Figure 6a-d) plus the
// §VII-A design-choice ablations, printing the same rows the paper
// reports.
//
// Usage:
//
//	provbench -all
//	provbench -table II            # one table: II, III, VII, VIII, IX, X
//	provbench -figure 6            # Figure 6 (CPU/memory/network/power)
//	provbench -ablations
//	provbench -sessions 1,2,4      # Table IX fan-in on the real pipeline,
//	                               # sweeping consumer-group sessions
//	provbench -brokers 1,2,4       # cluster fan-in: sweep broker node
//	                               # counts over a 25 ms netem link, with a
//	                               # live node leave mid-run (N >= 2)
//	provbench -soak -devices 2000 -duration 2m -churn-mtbf 20s \
//	          -loss 0.25 -quota 1048576   # churn soak with exactly-once check
//
// The -brokers sweep writes BENCH_cluster_fanin.json; with BENCH_JSON=1
// in the environment, the -sessions sweep also writes a
// BENCH_pipeline.json trajectory entry (frames/s, allocations).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/provlight/provlight"
	"github.com/provlight/provlight/internal/cluster"
	"github.com/provlight/provlight/internal/core"
	"github.com/provlight/provlight/internal/experiment"
	"github.com/provlight/provlight/internal/netem"
	"github.com/provlight/provlight/internal/obs"
	"github.com/provlight/provlight/internal/provdm"
	"github.com/provlight/provlight/internal/soak"
	"github.com/provlight/provlight/internal/spool"
	"github.com/provlight/provlight/internal/stats"
	"github.com/provlight/provlight/internal/translate"
	"github.com/provlight/provlight/internal/transport"
)

func main() {
	all := flag.Bool("all", false, "regenerate every table and figure")
	table := flag.String("table", "", "regenerate one table: II, III, VII, VIII, IX, X")
	figure := flag.String("figure", "", "regenerate Figure 6 (accepts 6, 6a..6d)")
	ablations := flag.Bool("ablations", false, "run the design-choice ablations")
	sessions := flag.String("sessions", "", "comma-separated consumer-group session counts for the real-pipeline Table IX fan-in sweep (e.g. 1,2,4)")
	brokers := flag.String("brokers", "", "comma-separated broker node counts for the cluster fan-in sweep (e.g. 1,2,4)")
	devices := flag.Int("devices", 16, "parallel devices for the -sessions / -brokers sweeps and -soak")
	tasks := flag.Int("tasks", 50, "tasks per device for the -sessions / -brokers sweeps")
	netemDelay := flag.Duration("netem-delay", 25*time.Millisecond, "one-way translator link delay for the -brokers sweep")
	clusterOut := flag.String("cluster-out", "BENCH_cluster_fanin.json", "cluster fan-in report output path for -brokers")
	pipelineOut := flag.String("pipeline-out", "BENCH_pipeline.json", "pipeline trajectory output path for -sessions under BENCH_JSON=1")
	runSoak := flag.Bool("soak", false, "run the churn soak harness and verify exactly-once delivery")
	soakDuration := flag.Duration("duration", time.Minute, "soak capture-phase length")
	soakSeed := flag.Int64("seed", 1, "soak churn/loss seed (same seed replays the same run)")
	soakMTBF := flag.Duration("churn-mtbf", 15*time.Second, "soak mean device uptime between crashes (0 disables churn)")
	soakDowntime := flag.Duration("churn-downtime", 0, "soak mean device outage length (default mtbf/10)")
	soakLoss := flag.Float64("loss", 0, "soak uplink packet-loss fraction, e.g. 0.25")
	soakQuota := flag.Int64("quota", 0, "soak per-device spool byte quota (0 = unlimited)")
	soakPolicy := flag.String("policy", "block", "soak spool degradation policy: block, drop-new, drop-oldest")
	soakMaxSessions := flag.Int("max-sessions", 0, "soak broker session cap (0 = unlimited)")
	soakConnectRate := flag.Float64("connect-rate", 0, "soak broker CONNECT admissions per second (0 = unlimited)")
	soakDrainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "soak post-run spool drain deadline")
	soakDrainConc := flag.Int("drain-concurrency", 64, "soak devices draining concurrently in the post-run phase")
	soakOut := flag.String("out", "BENCH_soak.json", "soak report output path")
	statsListen := flag.String("stats-listen", "", "serve /metrics, /stats and /healthz on this address during -soak (e.g. 127.0.0.1:9300)")
	enablePProf := flag.Bool("pprof", false, "also mount net/http/pprof on the -stats-listen mux")
	flag.Parse()

	switch {
	case *runSoak:
		policy, err := spool.ParseDegradePolicy(*soakPolicy)
		if err != nil {
			log.Fatalf("provbench: %v", err)
		}
		var reg *obs.Registry
		if *statsListen != "" {
			reg = obs.NewRegistry()
			addr, stop, err := obs.Serve(*statsListen, obs.NewMux(obs.MuxOptions{
				Registry: reg,
				PProf:    *enablePProf,
			}))
			if err != nil {
				log.Fatalf("provbench: stats listener: %v", err)
			}
			defer stop()
			log.Printf("provbench: metrics on http://%s/metrics", addr)
		}
		rep, err := soak.Run(context.Background(), soak.Options{
			Devices:          *devices,
			Duration:         *soakDuration,
			Seed:             *soakSeed,
			MTBF:             *soakMTBF,
			Downtime:         *soakDowntime,
			Loss:             *soakLoss,
			Quota:            *soakQuota,
			Policy:           policy,
			MaxSessions:      *soakMaxSessions,
			ConnectRate:      *soakConnectRate,
			DrainTimeout:     *soakDrainTimeout,
			DrainConcurrency: *soakDrainConc,
			Logf:             log.Printf,
			Metrics:          reg,
		})
		if err != nil {
			log.Fatalf("provbench: soak: %v", err)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("provbench: soak report: %v", err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*soakOut, data, 0o644); err != nil {
			log.Fatalf("provbench: soak report: %v", err)
		}
		fmt.Printf("soak: %d devices, %d churn events, %d frames applied, report %s\n",
			rep.Devices, rep.ChurnEvents, rep.FramesApplied, *soakOut)
		if !rep.ExactlyOnce {
			for _, v := range rep.Violations {
				fmt.Fprintf(os.Stderr, "soak violation: %s\n", v)
			}
			log.Fatalf("provbench: soak: exactly-once contract violated (%d violations)", len(rep.Violations))
		}
		fmt.Println("soak: exactly-once verified")
	case *sessions != "":
		counts, err := parseSessions(*sessions)
		if err != nil {
			log.Fatalf("provbench: %v", err)
		}
		fmt.Println(sessionsSweep(counts, *devices, *tasks, *pipelineOut).String())
	case *brokers != "":
		counts, err := parseSessions(*brokers)
		if err != nil {
			log.Fatalf("provbench: %v", err)
		}
		fmt.Println(clusterSweep(counts, *devices, *tasks, *netemDelay, *clusterOut).String())
	case *all:
		for _, tr := range experiment.AllTables() {
			fmt.Println(tr.Table.String())
		}
	case *table != "":
		var tr experiment.TableResult
		switch strings.ToUpper(*table) {
		case "II", "2":
			tr = experiment.TableII()
		case "III", "3":
			tr = experiment.TableIII()
		case "VII", "7":
			tr = experiment.TableVII()
		case "VIII", "8":
			tr = experiment.TableVIII()
		case "IX", "9":
			tr = experiment.TableIX()
		case "X", "10":
			tr = experiment.TableX()
		default:
			log.Fatalf("provbench: unknown table %q (want II, III, VII, VIII, IX, X)", *table)
		}
		fmt.Println(tr.Table.String())
	case *figure != "":
		if !strings.HasPrefix(*figure, "6") {
			log.Fatalf("provbench: unknown figure %q (the paper's evaluation figure is 6)", *figure)
		}
		fmt.Println(experiment.Figure6().Table.String())
	case *ablations:
		fmt.Println(experiment.Ablations().Table.String())
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func parseSessions(list string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("invalid -sessions entry %q (want positive integers)", part)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

// pipelineRun is one -sessions sweep point in the BENCH_pipeline.json
// trajectory: throughput plus the allocation cost of moving the frames.
type pipelineRun struct {
	Sessions        int     `json:"sessions"`
	ElapsedMS       float64 `json:"elapsed_ms"`
	Frames          uint64  `json:"frames"`
	FramesPerSec    float64 `json:"frames_per_sec"`
	Records         int     `json:"records"`
	Allocs          uint64  `json:"allocs"`
	AllocsPerRecord float64 `json:"allocs_per_record"`
}

type pipelineReport struct {
	Bench   string        `json:"bench"`
	Devices int           `json:"devices"`
	Tasks   int           `json:"tasks"`
	Runs    []pipelineRun `json:"runs"`
}

// writeJSON writes an indented report, fataling on failure: a bench that
// cannot record its result has failed.
func writeJSON(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Fatalf("provbench: encode %s: %v", path, err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatalf("provbench: write %s: %v", path, err)
	}
}

// sessionsSweep reproduces the Table IX fan-in scenario on the real
// pipeline — many devices publishing concurrently into one server — while
// sweeping how many shared-subscription consumer-group sessions the
// translator holds. The reported frames/s is the aggregate ingest rate
// (capture start to last record delivered to the target). With
// BENCH_JSON=1 the sweep also appends a machine-readable trajectory
// entry (frames/s and allocations per record) to out, so CI can track
// the core pipeline across commits.
func sessionsSweep(counts []int, devices, tasks int, out string) *stats.Table {
	tbl := stats.NewTable(
		fmt.Sprintf("Table IX (real pipeline): %d devices x %d tasks, consumer-group fan-in", devices, tasks),
		"sessions", "elapsed", "frames/s", "records")
	rep := pipelineReport{Bench: "pipeline_fanin", Devices: devices, Tasks: tasks}
	for _, n := range counts {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		elapsed, frames, records := runFanIn(n, devices, tasks)
		runtime.ReadMemStats(&after)
		allocs := after.Mallocs - before.Mallocs
		tbl.AddRow(fmt.Sprint(n),
			elapsed.Truncate(time.Millisecond).String(),
			fmt.Sprintf("%.0f", float64(frames)/elapsed.Seconds()),
			fmt.Sprint(records))
		rep.Runs = append(rep.Runs, pipelineRun{
			Sessions:        n,
			ElapsedMS:       float64(elapsed.Microseconds()) / 1000,
			Frames:          frames,
			FramesPerSec:    float64(frames) / elapsed.Seconds(),
			Records:         records,
			Allocs:          allocs,
			AllocsPerRecord: float64(allocs) / float64(records),
		})
	}
	if os.Getenv("BENCH_JSON") == "1" {
		writeJSON(out, rep)
		fmt.Printf("pipeline trajectory written to %s\n", out)
	}
	return tbl
}

func runFanIn(sessions, devices, tasks int) (time.Duration, uint64, int) {
	mem := provlight.NewMemoryTarget()
	server, err := provlight.StartServer(context.Background(), provlight.ServerConfig{
		Addr:     "127.0.0.1:0",
		Targets:  []provlight.Target{mem},
		Sessions: sessions,
	})
	if err != nil {
		log.Fatalf("provbench: start server: %v", err)
	}
	defer server.Close()

	start := time.Now()
	errs := make(chan error, devices)
	for d := 0; d < devices; d++ {
		go func(d int) {
			client, err := provlight.NewClient(context.Background(), provlight.Config{
				Broker:   server.Addr(),
				ClientID: fmt.Sprintf("bench-dev-%d", d),
			})
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			wf := client.NewWorkflow(fmt.Sprintf("wf-%d", d))
			if err := wf.Begin(); err != nil {
				errs <- err
				return
			}
			for i := 0; i < tasks; i++ {
				task := wf.NewTask(fmt.Sprintf("t%d", i), "bench")
				if err := task.Begin(); err != nil {
					errs <- err
					return
				}
				if err := task.End(provlight.NewData(fmt.Sprintf("out%d", i), provlight.Attrs(map[string]any{"i": int64(i)}))); err != nil {
					errs <- err
					return
				}
			}
			errs <- client.Flush()
		}(d)
	}
	var frames uint64
	for d := 0; d < devices; d++ {
		if err := <-errs; err != nil {
			log.Fatalf("provbench: device capture: %v", err)
		}
	}
	// Every task contributes a begin and an end record plus the workflow
	// begin; wait for full delivery, then stop the clock.
	want := devices * (1 + 2*tasks)
	deadline := time.Now().Add(2 * time.Minute)
	for len(mem.Records()) < want {
		if time.Now().After(deadline) {
			log.Fatalf("provbench: fan-in stalled at %d/%d records", len(mem.Records()), want)
		}
		time.Sleep(time.Millisecond)
	}
	server.Drain()
	elapsed := time.Since(start)
	for _, tr := range server.Translators {
		frames += tr.Stats().FramesReceived
	}
	return elapsed, frames, len(mem.Records())
}

// clusterPartitions fixes the hash-space size for the -brokers sweep so
// device placement below and the cluster agree on topic -> partition.
const clusterPartitions = 64

// clusterRun is one -brokers sweep point in BENCH_cluster_fanin.json.
// ExactlyOnce and OrderOK record assertions the run also enforces (a
// violation aborts the bench), so a written report is a passing one.
type clusterRun struct {
	Nodes        int     `json:"nodes"`
	ElapsedMS    float64 `json:"elapsed_ms"`
	Frames       uint64  `json:"frames"`
	FramesPerSec float64 `json:"frames_per_sec"`
	Records      int     `json:"records"`
	ForwardedOut uint64  `json:"forwarded_out"`
	Migrated     uint64  `json:"migrated"`
	LinkLost     uint64  `json:"link_lost"`
	Leave        bool    `json:"leave"`
	ExactlyOnce  bool    `json:"exactly_once"`
	OrderOK      bool    `json:"order_ok"`
}

type clusterFanInReport struct {
	Bench        string       `json:"bench"`
	Devices      int          `json:"devices"`
	Tasks        int          `json:"tasks"`
	NetemDelayMS float64      `json:"netem_delay_ms"`
	Runs         []clusterRun `json:"runs"`
	// Speedup is frames/s of the largest node count over the smallest.
	Speedup float64 `json:"speedup_max_vs_min"`
}

// clusterSweep measures fan-in throughput against a clustered broker
// tier, sweeping the node count. The translator's consumer-group links
// cross a netem-shaped path (one-way delay per write), so each group
// member's QoS 2 handshake is latency-bound and aggregate throughput
// scales with the number of nodes — the scenario the paper's Table IX
// runs against edge uplinks. Every run with N >= 2 also exercises a live
// node leave mid-stream and asserts per-workflow order and exactly-once
// delivery across the migration.
func clusterSweep(counts []int, devices, tasks int, delay time.Duration, out string) *stats.Table {
	tbl := stats.NewTable(
		fmt.Sprintf("Cluster fan-in: %d devices x %d tasks, %s link delay, mid-run leave at N>=2", devices, tasks, delay),
		"nodes", "elapsed", "frames/s", "forwarded", "migrated")
	rep := clusterFanInReport{
		Bench: "cluster_fanin", Devices: devices, Tasks: tasks,
		NetemDelayMS: float64(delay.Microseconds()) / 1000,
	}
	minRate, maxRate := 0.0, 0.0
	minNodes, maxNodes := 0, 0
	for _, n := range counts {
		run := runClusterFanIn(n, devices, tasks, delay)
		tbl.AddRow(fmt.Sprint(n),
			(time.Duration(run.ElapsedMS) * time.Millisecond).String(),
			fmt.Sprintf("%.0f", run.FramesPerSec),
			fmt.Sprint(run.ForwardedOut),
			fmt.Sprint(run.Migrated))
		rep.Runs = append(rep.Runs, run)
		if minNodes == 0 || n < minNodes {
			minNodes, minRate = n, run.FramesPerSec
		}
		if n > maxNodes {
			maxNodes, maxRate = n, run.FramesPerSec
		}
	}
	if minNodes != 0 && minRate > 0 {
		rep.Speedup = maxRate / minRate
	}
	writeJSON(out, rep)
	fmt.Printf("cluster fan-in report written to %s (%.2fx at %d nodes vs %d)\n",
		out, rep.Speedup, maxNodes, minNodes)
	return tbl
}

// runClusterFanIn drives the full capture pipeline through an n-node
// cluster: devices spread round-robin over the nodes, a cluster-aware
// translator with a group member on every node behind a delay-shaped
// link, and (for n >= 2) one extra node that joins the initial
// membership and leaves mid-stream, migrating its partitions live. The
// run aborts unless every record arrives exactly once and in per-
// workflow capture order.
//
// Device topics are placed evenly across the steady-state owners (see
// cluster.Owners): the sweep measures broker capacity, and at a handful
// of devices an uneven rendezvous draw would otherwise dominate the
// scaling signal that a paper-scale fleet (64 topics, Fig. 5) averages
// out naturally.
func runClusterFanIn(n, devices, tasks int, delay time.Duration) clusterRun {
	lb := transport.NewLoopback()
	startNodes, leaver := n, ""
	if n > 1 {
		startNodes = n + 1
		leaver = fmt.Sprintf("n%d", n)
	}
	cl, err := cluster.New(cluster.Config{
		Nodes:         startNodes,
		Transport:     lb,
		Partitions:    clusterPartitions,
		RetryInterval: 2 * time.Second,
		DrainTimeout:  30 * time.Second,
	})
	if err != nil {
		log.Fatalf("provbench: cluster.New: %v", err)
	}
	defer cl.Close()

	steady := make([]string, n)
	for i := range steady {
		steady[i] = fmt.Sprintf("n%d", i)
	}
	owners := cluster.Owners(clusterPartitions, steady)
	quota := (devices + n - 1) / n
	load := map[string]int{}
	names := make([]string, 0, devices)
	for k := 0; len(names) < devices; k++ {
		name := fmt.Sprintf("bench-dev-%d", k)
		owner := owners[cluster.PartitionOf(core.DefaultTopic(name), clusterPartitions)]
		if load[owner] >= quota {
			continue
		}
		load[owner]++
		names = append(names, name)
	}

	mem := translate.NewMemoryTarget()
	shaped := netem.WrapTransport(lb, netem.Profile{Delay: delay})
	tr, err := translate.New(context.Background(), translate.Config{
		ClusterAddrs:  cl.Addrs(),
		Transport:     shaped,
		ClientID:      "bench-cluster-xlate",
		RetryInterval: 2 * time.Second,
		MaxRetries:    10,
		Targets:       []translate.Target{mem},
		DisableAcks:   true,
	})
	if err != nil {
		log.Fatalf("provbench: translate.New: %v", err)
	}
	defer tr.Close()

	addrs := cl.Addrs()
	start := time.Now()
	clients := make([]*provlight.Client, devices)
	for d := range clients {
		c, err := provlight.NewClient(context.Background(), provlight.Config{
			Broker:     addrs[d%n], // survivors only: a device on the leaver would need its spool to outlive the broker
			Transport:  lb,
			ClientID:   names[d],
			WindowSize: 16,
		})
		if err != nil {
			log.Fatalf("provbench: device %d: %v", d, err)
		}
		defer c.Close()
		clients[d] = c
	}

	leave := make(chan struct{})
	left := make(chan error, 1)
	if leaver != "" {
		go func() {
			<-leave
			left <- cl.Leave(context.Background(), leaver)
		}()
	}

	errs := make(chan error, devices)
	var leaveOnce sync.Once
	for d := range clients {
		go func(d int) {
			wf := clients[d].NewWorkflow(fmt.Sprintf("wf-%d", d))
			if err := wf.Begin(); err != nil {
				errs <- fmt.Errorf("device %d workflow begin: %w", d, err)
				return
			}
			for i := 0; i < tasks; i++ {
				task := wf.NewTask(fmt.Sprintf("t%04d", i), "bench")
				if err := task.Begin(); err != nil {
					errs <- fmt.Errorf("device %d task %d begin: %w", d, i, err)
					return
				}
				if err := task.End(provlight.NewData(fmt.Sprintf("out-%d-%d", d, i), nil)); err != nil {
					errs <- fmt.Errorf("device %d task %d end: %w", d, i, err)
					return
				}
				if leaver != "" && d == 0 && i == tasks/3 {
					leaveOnce.Do(func() { close(leave) })
				}
			}
			errs <- clients[d].Flush()
		}(d)
	}
	for i := 0; i < devices; i++ {
		if err := <-errs; err != nil {
			log.Fatalf("provbench: %v", err)
		}
	}
	if leaver != "" {
		if err := <-left; err != nil {
			log.Fatalf("provbench: leave %s: %v", leaver, err)
		}
	}

	want := devices * (1 + 2*tasks)
	deadline := time.Now().Add(3 * time.Minute)
	for mem.Len() < want {
		if time.Now().After(deadline) {
			log.Fatalf("provbench: cluster fan-in stalled at %d/%d records", mem.Len(), want)
		}
		time.Sleep(time.Millisecond)
	}
	tr.Drain()
	elapsed := time.Since(start)

	got := mem.Len()
	if got != want {
		log.Fatalf("provbench: cluster fan-in delivered %d records, want exactly %d (duplicate delivery)", got, want)
	}
	assertWorkflowOrder(mem.Records(), devices, tasks)

	run := clusterRun{
		Nodes:        n,
		ElapsedMS:    float64(elapsed.Microseconds()) / 1000,
		Frames:       tr.Stats().FramesReceived,
		FramesPerSec: float64(want) / elapsed.Seconds(),
		Records:      got,
		Leave:        leaver != "",
		ExactlyOnce:  true,
		OrderOK:      true,
	}
	for _, ns := range cl.Stats() {
		run.ForwardedOut += ns.ForwardedOut
		run.Migrated += ns.Migrated
		run.LinkLost += ns.LinkLost
	}
	return run
}

// assertWorkflowOrder fatals unless each workflow's records arrived in
// exact capture order: workflow begin, then task begin/end pairs t0000,
// t0001, ... — the guarantee the cluster must preserve across
// forwarding and migration.
func assertWorkflowOrder(records []provdm.Record, devices, tasks int) {
	perWF := map[string][]provdm.Record{}
	for _, r := range records {
		perWF[r.WorkflowID] = append(perWF[r.WorkflowID], r)
	}
	if len(perWF) != devices {
		log.Fatalf("provbench: records span %d workflows, want %d", len(perWF), devices)
	}
	for wf, recs := range perWF {
		if recs[0].Event != provdm.EventWorkflowBegin {
			log.Fatalf("provbench: workflow %s: first record is %v, not workflow begin", wf, recs[0].Event)
		}
		rest := recs[1:]
		if len(rest) != 2*tasks {
			log.Fatalf("provbench: workflow %s: %d task records, want %d", wf, len(rest), 2*tasks)
		}
		for i := 0; i < tasks; i++ {
			wantID := fmt.Sprintf("t%04d", i)
			begin, end := rest[2*i], rest[2*i+1]
			if begin.Event != provdm.EventTaskBegin || begin.TaskID != wantID {
				log.Fatalf("provbench: workflow %s: record %d is %v %s, want begin %s", wf, 2*i, begin.Event, begin.TaskID, wantID)
			}
			if end.Event != provdm.EventTaskEnd || end.TaskID != wantID {
				log.Fatalf("provbench: workflow %s: record %d is %v %s, want end %s", wf, 2*i+1, end.Event, end.TaskID, wantID)
			}
		}
	}
}
