// Command provbench regenerates every table and figure of the paper's
// evaluation (Tables II, III, VII, VIII, IX, X; Figure 6a-d) plus the
// §VII-A design-choice ablations, printing the same rows the paper
// reports.
//
// Usage:
//
//	provbench -all
//	provbench -table II            # one table: II, III, VII, VIII, IX, X
//	provbench -figure 6            # Figure 6 (CPU/memory/network/power)
//	provbench -ablations
//	provbench -sessions 1,2,4      # Table IX fan-in on the real pipeline,
//	                               # sweeping consumer-group sessions
//	provbench -soak -devices 2000 -duration 2m -churn-mtbf 20s \
//	          -loss 0.25 -quota 1048576   # churn soak with exactly-once check
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/provlight/provlight"
	"github.com/provlight/provlight/internal/experiment"
	"github.com/provlight/provlight/internal/soak"
	"github.com/provlight/provlight/internal/spool"
	"github.com/provlight/provlight/internal/stats"
)

func main() {
	all := flag.Bool("all", false, "regenerate every table and figure")
	table := flag.String("table", "", "regenerate one table: II, III, VII, VIII, IX, X")
	figure := flag.String("figure", "", "regenerate Figure 6 (accepts 6, 6a..6d)")
	ablations := flag.Bool("ablations", false, "run the design-choice ablations")
	sessions := flag.String("sessions", "", "comma-separated consumer-group session counts for the real-pipeline Table IX fan-in sweep (e.g. 1,2,4)")
	devices := flag.Int("devices", 16, "parallel devices for the -sessions sweep and -soak")
	tasks := flag.Int("tasks", 50, "tasks per device for the -sessions sweep")
	runSoak := flag.Bool("soak", false, "run the churn soak harness and verify exactly-once delivery")
	soakDuration := flag.Duration("duration", time.Minute, "soak capture-phase length")
	soakSeed := flag.Int64("seed", 1, "soak churn/loss seed (same seed replays the same run)")
	soakMTBF := flag.Duration("churn-mtbf", 15*time.Second, "soak mean device uptime between crashes (0 disables churn)")
	soakDowntime := flag.Duration("churn-downtime", 0, "soak mean device outage length (default mtbf/10)")
	soakLoss := flag.Float64("loss", 0, "soak uplink packet-loss fraction, e.g. 0.25")
	soakQuota := flag.Int64("quota", 0, "soak per-device spool byte quota (0 = unlimited)")
	soakPolicy := flag.String("policy", "block", "soak spool degradation policy: block, drop-new, drop-oldest")
	soakMaxSessions := flag.Int("max-sessions", 0, "soak broker session cap (0 = unlimited)")
	soakConnectRate := flag.Float64("connect-rate", 0, "soak broker CONNECT admissions per second (0 = unlimited)")
	soakDrainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "soak post-run spool drain deadline")
	soakDrainConc := flag.Int("drain-concurrency", 64, "soak devices draining concurrently in the post-run phase")
	soakOut := flag.String("out", "BENCH_soak.json", "soak report output path")
	flag.Parse()

	switch {
	case *runSoak:
		policy, err := spool.ParseDegradePolicy(*soakPolicy)
		if err != nil {
			log.Fatalf("provbench: %v", err)
		}
		rep, err := soak.Run(context.Background(), soak.Options{
			Devices:          *devices,
			Duration:         *soakDuration,
			Seed:             *soakSeed,
			MTBF:             *soakMTBF,
			Downtime:         *soakDowntime,
			Loss:             *soakLoss,
			Quota:            *soakQuota,
			Policy:           policy,
			MaxSessions:      *soakMaxSessions,
			ConnectRate:      *soakConnectRate,
			DrainTimeout:     *soakDrainTimeout,
			DrainConcurrency: *soakDrainConc,
			Logf:             log.Printf,
		})
		if err != nil {
			log.Fatalf("provbench: soak: %v", err)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("provbench: soak report: %v", err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*soakOut, data, 0o644); err != nil {
			log.Fatalf("provbench: soak report: %v", err)
		}
		fmt.Printf("soak: %d devices, %d churn events, %d frames applied, report %s\n",
			rep.Devices, rep.ChurnEvents, rep.FramesApplied, *soakOut)
		if !rep.ExactlyOnce {
			for _, v := range rep.Violations {
				fmt.Fprintf(os.Stderr, "soak violation: %s\n", v)
			}
			log.Fatalf("provbench: soak: exactly-once contract violated (%d violations)", len(rep.Violations))
		}
		fmt.Println("soak: exactly-once verified")
	case *sessions != "":
		counts, err := parseSessions(*sessions)
		if err != nil {
			log.Fatalf("provbench: %v", err)
		}
		fmt.Println(sessionsSweep(counts, *devices, *tasks).String())
	case *all:
		for _, tr := range experiment.AllTables() {
			fmt.Println(tr.Table.String())
		}
	case *table != "":
		var tr experiment.TableResult
		switch strings.ToUpper(*table) {
		case "II", "2":
			tr = experiment.TableII()
		case "III", "3":
			tr = experiment.TableIII()
		case "VII", "7":
			tr = experiment.TableVII()
		case "VIII", "8":
			tr = experiment.TableVIII()
		case "IX", "9":
			tr = experiment.TableIX()
		case "X", "10":
			tr = experiment.TableX()
		default:
			log.Fatalf("provbench: unknown table %q (want II, III, VII, VIII, IX, X)", *table)
		}
		fmt.Println(tr.Table.String())
	case *figure != "":
		if !strings.HasPrefix(*figure, "6") {
			log.Fatalf("provbench: unknown figure %q (the paper's evaluation figure is 6)", *figure)
		}
		fmt.Println(experiment.Figure6().Table.String())
	case *ablations:
		fmt.Println(experiment.Ablations().Table.String())
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func parseSessions(list string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("invalid -sessions entry %q (want positive integers)", part)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

// sessionsSweep reproduces the Table IX fan-in scenario on the real
// pipeline — many devices publishing concurrently into one server — while
// sweeping how many shared-subscription consumer-group sessions the
// translator holds. The reported frames/s is the aggregate ingest rate
// (capture start to last record delivered to the target).
func sessionsSweep(counts []int, devices, tasks int) *stats.Table {
	tbl := stats.NewTable(
		fmt.Sprintf("Table IX (real pipeline): %d devices x %d tasks, consumer-group fan-in", devices, tasks),
		"sessions", "elapsed", "frames/s", "records")
	for _, n := range counts {
		elapsed, frames, records := runFanIn(n, devices, tasks)
		tbl.AddRow(fmt.Sprint(n),
			elapsed.Truncate(time.Millisecond).String(),
			fmt.Sprintf("%.0f", float64(frames)/elapsed.Seconds()),
			fmt.Sprint(records))
	}
	return tbl
}

func runFanIn(sessions, devices, tasks int) (time.Duration, uint64, int) {
	mem := provlight.NewMemoryTarget()
	server, err := provlight.StartServer(context.Background(), provlight.ServerConfig{
		Addr:     "127.0.0.1:0",
		Targets:  []provlight.Target{mem},
		Sessions: sessions,
	})
	if err != nil {
		log.Fatalf("provbench: start server: %v", err)
	}
	defer server.Close()

	start := time.Now()
	errs := make(chan error, devices)
	for d := 0; d < devices; d++ {
		go func(d int) {
			client, err := provlight.NewClient(context.Background(), provlight.Config{
				Broker:   server.Addr(),
				ClientID: fmt.Sprintf("bench-dev-%d", d),
			})
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			wf := client.NewWorkflow(fmt.Sprintf("wf-%d", d))
			if err := wf.Begin(); err != nil {
				errs <- err
				return
			}
			for i := 0; i < tasks; i++ {
				task := wf.NewTask(fmt.Sprintf("t%d", i), "bench")
				if err := task.Begin(); err != nil {
					errs <- err
					return
				}
				if err := task.End(provlight.NewData(fmt.Sprintf("out%d", i), provlight.Attrs(map[string]any{"i": int64(i)}))); err != nil {
					errs <- err
					return
				}
			}
			errs <- client.Flush()
		}(d)
	}
	var frames uint64
	for d := 0; d < devices; d++ {
		if err := <-errs; err != nil {
			log.Fatalf("provbench: device capture: %v", err)
		}
	}
	// Every task contributes a begin and an end record plus the workflow
	// begin; wait for full delivery, then stop the clock.
	want := devices * (1 + 2*tasks)
	deadline := time.Now().Add(2 * time.Minute)
	for len(mem.Records()) < want {
		if time.Now().After(deadline) {
			log.Fatalf("provbench: fan-in stalled at %d/%d records", len(mem.Records()), want)
		}
		time.Sleep(time.Millisecond)
	}
	server.Drain()
	elapsed := time.Since(start)
	for _, tr := range server.Translators {
		frames += tr.Stats().FramesReceived
	}
	return elapsed, frames, len(mem.Records())
}
