// Command provbench regenerates every table and figure of the paper's
// evaluation (Tables II, III, VII, VIII, IX, X; Figure 6a-d) plus the
// §VII-A design-choice ablations, printing the same rows the paper
// reports.
//
// Usage:
//
//	provbench -all
//	provbench -table II            # one table: II, III, VII, VIII, IX, X
//	provbench -figure 6            # Figure 6 (CPU/memory/network/power)
//	provbench -ablations
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"github.com/provlight/provlight/internal/experiment"
)

func main() {
	all := flag.Bool("all", false, "regenerate every table and figure")
	table := flag.String("table", "", "regenerate one table: II, III, VII, VIII, IX, X")
	figure := flag.String("figure", "", "regenerate Figure 6 (accepts 6, 6a..6d)")
	ablations := flag.Bool("ablations", false, "run the design-choice ablations")
	flag.Parse()

	switch {
	case *all:
		for _, tr := range experiment.AllTables() {
			fmt.Println(tr.Table.String())
		}
	case *table != "":
		var tr experiment.TableResult
		switch strings.ToUpper(*table) {
		case "II", "2":
			tr = experiment.TableII()
		case "III", "3":
			tr = experiment.TableIII()
		case "VII", "7":
			tr = experiment.TableVII()
		case "VIII", "8":
			tr = experiment.TableVIII()
		case "IX", "9":
			tr = experiment.TableIX()
		case "X", "10":
			tr = experiment.TableX()
		default:
			log.Fatalf("provbench: unknown table %q (want II, III, VII, VIII, IX, X)", *table)
		}
		fmt.Println(tr.Table.String())
	case *figure != "":
		if !strings.HasPrefix(*figure, "6") {
			log.Fatalf("provbench: unknown figure %q (the paper's evaluation figure is 6)", *figure)
		}
		fmt.Println(experiment.Figure6().Table.String())
	case *ablations:
		fmt.Println(experiment.Ablations().Table.String())
	default:
		flag.Usage()
		os.Exit(2)
	}
}
