// Command provlight-broker runs the ProvLight MQTT-SN broker (the Go
// equivalent of Eclipse RSMB) on a UDP address.
//
// Usage:
//
//	provlight-broker -addr 0.0.0.0:1883 [-retry 1s] [-max-retries 5] \
//	    [-send-window 32] [-shards 16] \
//	    [-max-sessions 0] [-connect-rate 0] \
//	    [-stats-listen 127.0.0.1:1884] [-v]
//
// -max-sessions and -connect-rate enable overload admission control:
// past either limit, new CONNECTs are rejected with a congestion CONNACK
// that well-behaved clients back off from (reconnects of existing
// sessions always pass the session cap). -stats-listen serves the broker
// counters as JSON on GET /stats (plus GET /healthz).
package main

import (
	"encoding/json"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/provlight/provlight/internal/broker"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:1883", "UDP listen address")
	retry := flag.Duration("retry", time.Second, "retransmission interval")
	maxRetries := flag.Int("max-retries", 5, "outbound retransmissions before giving a frame up (group frames re-route instead)")
	sendWindow := flag.Int("send-window", 32, "in-flight QoS 1/2 messages per subscriber session")
	shards := flag.Int("shards", 16, "session-table stripes (each with its own handler goroutine)")
	maxSessions := flag.Int("max-sessions", 0, "admission control: reject new CONNECTs past this many live sessions (0: unlimited)")
	connectRate := flag.Float64("connect-rate", 0, "admission control: sustained CONNECTs accepted per second (0: unlimited)")
	connectBurst := flag.Int("connect-burst", 0, "CONNECT burst allowance for -connect-rate (0: 2x the rate)")
	statsListen := flag.String("stats-listen", "", "serve broker stats as JSON on this HTTP address (GET /stats, /healthz)")
	verbose := flag.Bool("v", false, "verbose protocol logging")
	flag.Parse()

	cfg := broker.Config{
		Addr:          *addr,
		RetryInterval: *retry,
		MaxRetries:    *maxRetries,
		SendWindow:    *sendWindow,
		Shards:        *shards,
		MaxSessions:   *maxSessions,
		ConnectRate:   *connectRate,
		ConnectBurst:  *connectBurst,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	b, err := broker.New(cfg)
	if err != nil {
		log.Fatalf("provlight-broker: %v", err)
	}
	defer b.Close()
	log.Printf("provlight-broker: serving MQTT-SN on udp://%s", b.Addr())

	if *statsListen != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(b.Stats())
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"ok":true}` + "\n"))
		})
		statsSrv := &http.Server{Addr: *statsListen, Handler: mux}
		go func() {
			if err := statsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("provlight-broker: stats listener: %v", err)
			}
		}()
		defer statsSrv.Close()
		log.Printf("provlight-broker: serving stats on http://%s/stats", *statsListen)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	st := b.Stats()
	log.Printf("provlight-broker: shutting down (publishes=%d routed=%d retransmissions=%d groups=%d rerouted=%d giveups=%d congestion_rejected=%d)",
		st.PublishesReceived, st.MessagesRouted, st.Retransmissions,
		st.Groups, st.GroupRerouted, st.DeliveryGiveUps, st.CongestionRejected)
}
