// Command provlight-broker runs the ProvLight MQTT-SN broker (the Go
// equivalent of Eclipse RSMB) on a UDP address.
//
// Usage:
//
//	provlight-broker -addr 0.0.0.0:1883 [-retry 1s] [-max-retries 5] \
//	    [-send-window 32] [-shards 16] [-v]
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/provlight/provlight/internal/broker"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:1883", "UDP listen address")
	retry := flag.Duration("retry", time.Second, "retransmission interval")
	maxRetries := flag.Int("max-retries", 5, "outbound retransmissions before giving a frame up (group frames re-route instead)")
	sendWindow := flag.Int("send-window", 32, "in-flight QoS 1/2 messages per subscriber session")
	shards := flag.Int("shards", 16, "session-table stripes (each with its own handler goroutine)")
	verbose := flag.Bool("v", false, "verbose protocol logging")
	flag.Parse()

	cfg := broker.Config{
		Addr:          *addr,
		RetryInterval: *retry,
		MaxRetries:    *maxRetries,
		SendWindow:    *sendWindow,
		Shards:        *shards,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	b, err := broker.New(cfg)
	if err != nil {
		log.Fatalf("provlight-broker: %v", err)
	}
	defer b.Close()
	log.Printf("provlight-broker: serving MQTT-SN on udp://%s", b.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	st := b.Stats()
	log.Printf("provlight-broker: shutting down (publishes=%d routed=%d retransmissions=%d groups=%d rerouted=%d giveups=%d)",
		st.PublishesReceived, st.MessagesRouted, st.Retransmissions,
		st.Groups, st.GroupRerouted, st.DeliveryGiveUps)
}
