// Command provlight-broker runs the ProvLight MQTT-SN broker (the Go
// equivalent of Eclipse RSMB) on a UDP address.
//
// Usage:
//
//	provlight-broker -addr 0.0.0.0:1883 [-retry 1s] [-v]
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/provlight/provlight/internal/broker"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:1883", "UDP listen address")
	retry := flag.Duration("retry", time.Second, "retransmission interval")
	verbose := flag.Bool("v", false, "verbose protocol logging")
	flag.Parse()

	cfg := broker.Config{Addr: *addr, RetryInterval: *retry}
	if *verbose {
		cfg.Logf = log.Printf
	}
	b, err := broker.New(cfg)
	if err != nil {
		log.Fatalf("provlight-broker: %v", err)
	}
	defer b.Close()
	log.Printf("provlight-broker: serving MQTT-SN on udp://%s", b.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	st := b.Stats()
	log.Printf("provlight-broker: shutting down (publishes=%d routed=%d retransmissions=%d)",
		st.PublishesReceived, st.MessagesRouted, st.Retransmissions)
}
