// Command provlight-broker runs the ProvLight MQTT-SN broker (the Go
// equivalent of Eclipse RSMB) on a UDP address — either a single broker
// or, with -cluster/-cluster-addrs, N nodes acting as one logical
// broker.
//
// Usage:
//
//	provlight-broker -addr 0.0.0.0:1883 [-retry 1s] [-max-retries 5] \
//	    [-send-window 32] [-shards 16] \
//	    [-max-sessions 0] [-connect-rate 0] \
//	    [-cluster 1] [-cluster-addrs host:port,host:port,...] \
//	    [-partitions 64] [-heartbeat 1s] [-suspect-timeout 5s] \
//	    [-stats-listen 127.0.0.1:1884] [-v]
//
// -max-sessions and -connect-rate enable overload admission control:
// past either limit, new CONNECTs are rejected with a congestion CONNACK
// that well-behaved clients back off from (reconnects of existing
// sessions always pass the session cap).
//
// With -cluster N (or an explicit -cluster-addrs list) the process runs
// N broker nodes that partition the topic space by rendezvous hashing
// and forward frames between each other; clients may connect to any
// node. The default -cluster 1 is byte-for-byte the single broker: no
// forwarding, no links, zero extra configuration.
//
// -stats-listen serves counters as JSON on GET /stats (plus GET
// /healthz and Prometheus text exposition on GET /metrics; -pprof
// additionally mounts net/http/pprof). In cluster mode /stats carries
// the full ownership table: per node its id, listen address, owned
// partitions, broker counters, the forwarded/migrated/link-lost
// cluster counters, the membership epoch, and per-peer link health
// (state, suspect flag, redials, last heartbeat age), alongside the
// partition->owner map.
//
// In cluster mode a heartbeat failure detector runs between the nodes:
// a node silent for -suspect-timeout (confirmed by a second peer when
// one exists) is removed and its partitions reassigned to survivors,
// with the frames retained on its links redelivered to the new owners.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/provlight/provlight/internal/broker"
	"github.com/provlight/provlight/internal/cluster"
	"github.com/provlight/provlight/internal/obs"
)

// clusterStats is the /stats document in cluster mode: the partition
// ownership table plus every node's identity, owned partitions, broker
// counters, and cluster-layer forwarded/migrated counters.
type clusterStats struct {
	Topology cluster.TopologyInfo `json:"topology"`
	Nodes    []cluster.NodeStats  `json:"nodes"`
}

// serveStats starts the shared stats listener: GET /stats returns
// payload() as JSON, /metrics the registry, /healthz a liveness probe,
// and -pprof mounts net/http/pprof. Returns a shutdown func.
func serveStats(listen string, reg *obs.Registry, pprofOn bool, payload func() any) func() {
	addr, stop, err := obs.Serve(listen, obs.NewMux(obs.MuxOptions{
		Registry: reg,
		Stats:    payload,
		PProf:    pprofOn,
	}))
	if err != nil {
		log.Fatalf("provlight-broker: stats listener: %v", err)
	}
	log.Printf("provlight-broker: serving stats on http://%s/stats (metrics on /metrics)", addr)
	return stop
}

func main() {
	addr := flag.String("addr", "127.0.0.1:1883", "UDP listen address")
	retry := flag.Duration("retry", time.Second, "retransmission interval")
	maxRetries := flag.Int("max-retries", 5, "outbound retransmissions before giving a frame up (group frames re-route instead)")
	sendWindow := flag.Int("send-window", 32, "in-flight QoS 1/2 messages per subscriber session")
	shards := flag.Int("shards", 16, "session-table stripes (each with its own handler goroutine)")
	maxSessions := flag.Int("max-sessions", 0, "admission control: reject new CONNECTs past this many live sessions (0: unlimited)")
	connectRate := flag.Float64("connect-rate", 0, "admission control: sustained CONNECTs accepted per second (0: unlimited)")
	connectBurst := flag.Int("connect-burst", 0, "CONNECT burst allowance for -connect-rate (0: 2x the rate)")
	clusterN := flag.Int("cluster", 1, "run this many broker nodes as one logical broker (1: plain single broker, no clustering)")
	clusterAddrs := flag.String("cluster-addrs", "", "comma-separated UDP listen addresses, one per cluster node (overrides -cluster and -addr)")
	partitions := flag.Int("partitions", 64, "cluster topic hash-space size (fixed for the cluster's lifetime)")
	heartbeat := flag.Duration("heartbeat", time.Second, "cluster failure-detector heartbeat interval (<0: disable detection)")
	suspectTimeout := flag.Duration("suspect-timeout", 0, "silence before a cluster node is suspected dead (0: 5x -heartbeat)")
	statsListen := flag.String("stats-listen", "", "serve broker stats on this HTTP address (GET /stats, /metrics, /healthz)")
	enablePProf := flag.Bool("pprof", false, "also mount net/http/pprof on the -stats-listen mux")
	verbose := flag.Bool("v", false, "verbose protocol logging")
	flag.Parse()

	reg := obs.NewRegistry()

	var nodeAddrs []string
	if *clusterAddrs != "" {
		for _, a := range strings.Split(*clusterAddrs, ",") {
			nodeAddrs = append(nodeAddrs, strings.TrimSpace(a))
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	if *clusterN > 1 || len(nodeAddrs) > 0 {
		ccfg := cluster.Config{
			Nodes:               *clusterN,
			Addrs:               nodeAddrs,
			Partitions:          *partitions,
			BrokerRetryInterval: *retry,
			BrokerMaxRetries:    *maxRetries,
			HeartbeatInterval:   *heartbeat,
			SuspectTimeout:      *suspectTimeout,
			Metrics:             reg,
		}
		if *verbose {
			ccfg.Logf = log.Printf
		}
		cl, err := cluster.New(ccfg)
		if err != nil {
			log.Fatalf("provlight-broker: %v", err)
		}
		defer cl.Close()
		ids := cl.NodeIDs()
		for i, a := range cl.Addrs() {
			log.Printf("provlight-broker: node %s serving MQTT-SN on udp://%s", ids[i], a)
		}
		if *statsListen != "" {
			stop := serveStats(*statsListen, reg, *enablePProf, func() any {
				return clusterStats{Topology: cl.Topology(), Nodes: cl.Stats()}
			})
			defer stop()
		}
		<-sig
		for _, ns := range cl.Stats() {
			log.Printf("provlight-broker: shutting down %s (publishes=%d routed=%d forwarded_out=%d migrated=%d link_lost=%d takeover_redelivered=%d epoch_refused=%d)",
				ns.ID, ns.Broker.PublishesReceived, ns.Broker.MessagesRouted,
				ns.ForwardedOut, ns.Migrated, ns.LinkLost,
				ns.TakeoverRedelivered, ns.EpochRefused)
		}
		// Graceful-ish teardown: nodes leave one by one so in-flight
		// frames migrate to survivors before the last broker closes.
		for len(cl.NodeIDs()) > 1 {
			ids := cl.NodeIDs()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := cl.Leave(ctx, ids[len(ids)-1]); err != nil {
				log.Printf("provlight-broker: leave %s: %v", ids[len(ids)-1], err)
				cancel()
				break
			}
			cancel()
		}
		return
	}

	cfg := broker.Config{
		Addr:          *addr,
		RetryInterval: *retry,
		MaxRetries:    *maxRetries,
		SendWindow:    *sendWindow,
		Shards:        *shards,
		MaxSessions:   *maxSessions,
		ConnectRate:   *connectRate,
		ConnectBurst:  *connectBurst,
		Metrics:       reg,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	b, err := broker.New(cfg)
	if err != nil {
		log.Fatalf("provlight-broker: %v", err)
	}
	defer b.Close()
	broker.CollectStats(reg, "", b.Stats)
	log.Printf("provlight-broker: serving MQTT-SN on udp://%s", b.Addr())

	if *statsListen != "" {
		stop := serveStats(*statsListen, reg, *enablePProf, func() any { return b.Stats() })
		defer stop()
	}

	<-sig
	st := b.Stats()
	log.Printf("provlight-broker: shutting down (publishes=%d routed=%d retransmissions=%d groups=%d rerouted=%d giveups=%d congestion_rejected=%d)",
		st.PublishesReceived, st.MessagesRouted, st.Retransmissions,
		st.Groups, st.GroupRerouted, st.DeliveryGiveUps, st.CongestionRejected)
}
