// Command provlake-server runs the ProvLake-compatible provenance manager
// service (JSON document ingestion over HTTP 1.1).
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"github.com/provlight/provlight/internal/provlake"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:22001", "HTTP listen address")
	flag.Parse()

	srv := provlake.NewServer(nil)
	if err := srv.Start(*addr); err != nil {
		log.Fatalf("provlake-server: %v", err)
	}
	defer srv.Close()
	log.Printf("provlake-server: serving on http://%s", srv.Addr())
	log.Printf("provlake-server: endpoints: POST /prov, GET /workflows, GET /workflow?id=")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("provlake-server: stored %d documents over %d requests",
		srv.Store().Count(), srv.Requests())
}
