// Command dfanalyzer-server runs the DfAnalyzer-compatible provenance
// storage and query service (HTTP 1.1, in-memory column store), with
// optional crash durability: -data-dir write-ahead logs every mutation,
// snapshots periodically (atomic temp+rename), and recovers on start by
// loading the latest snapshot and replaying the WAL tail.
//
// Replication: -replication-listen makes a durable store the primary of
// a replication group, shipping its WAL to followers; -replicate-from
// runs this process as a read replica of a primary; -promote lifts a
// (stopped) replica's data directory into a new primary under a fresh
// term, fencing the old primary out.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/provlight/provlight/internal/dfanalyzer"
	"github.com/provlight/provlight/internal/obs"
	"github.com/provlight/provlight/internal/replica"
	"github.com/provlight/provlight/internal/wal"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:22000", "HTTP listen address")
	dataDir := flag.String("data-dir", "", "durability directory (WAL + snapshots); empty = in-memory only")
	fsync := flag.String("fsync", "interval", "WAL fsync policy: each|interval|off")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "background fsync period for -fsync interval")
	snapshotEvery := flag.Int("snapshot-every", 4096, "snapshot after this many logged operations (negative disables)")
	replListen := flag.String("replication-listen", "", "serve WAL replication to followers on this address (primary role; requires -data-dir)")
	replFrom := flag.String("replicate-from", "", "follow the primary's replication address as a read replica (requires -data-dir)")
	replID := flag.String("replica-id", "", "stable follower identity for resumable replication (default: hostname)")
	minSync := flag.Int("min-sync", 0, "followers that must acknowledge a record before it counts as committed (0 = async replication)")
	promote := flag.Bool("promote", false, "promote this data directory to primary under a new term, then serve (run against the most caught-up replica after primary loss)")
	readyMaxLag := flag.Uint64("ready-max-lag", 0, "replica lag (records) beyond which /readyz reports not ready (0: any connected replica is ready)")
	enablePProf := flag.Bool("pprof", false, "mount net/http/pprof on the API mux")
	flag.Parse()

	if (*replListen != "" || *replFrom != "" || *promote) && *dataDir == "" {
		log.Fatalf("dfanalyzer-server: replication requires -data-dir (the WAL is what gets shipped)")
	}
	if *replFrom != "" && *replListen != "" {
		log.Fatalf("dfanalyzer-server: -replicate-from and -replication-listen are mutually exclusive (chained replication is not supported)")
	}
	if *replFrom != "" && *promote {
		log.Fatalf("dfanalyzer-server: -promote conflicts with -replicate-from; restart without -replicate-from to promote")
	}

	var store *dfanalyzer.Store
	if *dataDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsync)
		if err != nil {
			log.Fatalf("dfanalyzer-server: %v", err)
		}
		start := time.Now()
		store, err = dfanalyzer.OpenStore(dfanalyzer.StoreOptions{
			Dir:           *dataDir,
			Sync:          policy,
			SyncInterval:  *fsyncInterval,
			SnapshotEvery: *snapshotEvery,
		})
		if err != nil {
			log.Fatalf("dfanalyzer-server: open store: %v", err)
		}
		log.Printf("dfanalyzer-server: recovered %s in %v (dataflows: %v)",
			*dataDir, time.Since(start).Round(time.Millisecond), store.Dataflows())
	}

	if *promote {
		term, err := store.Promote()
		if err != nil {
			log.Fatalf("dfanalyzer-server: promote: %v", err)
		}
		log.Printf("dfanalyzer-server: promoted to primary, term %d (deposed primaries and stale translators are fenced)", term)
	}

	srv := dfanalyzer.NewServer(store)
	srv.ReadyMaxLag = *readyMaxLag
	srv.Metrics = obs.NewRegistry()
	srv.EnablePProf = *enablePProf

	var repl *replica.Server
	var follower *replica.Follower
	switch {
	case *replListen != "":
		var err error
		repl, err = replica.NewServer(store, replica.Options{
			MinSync: *minSync,
			OnError: func(err error) { log.Printf("dfanalyzer-server: replication: %v", err) },
		})
		if err != nil {
			log.Fatalf("dfanalyzer-server: replication: %v", err)
		}
		if err := repl.Start(*replListen); err != nil {
			log.Fatalf("dfanalyzer-server: replication listen: %v", err)
		}
		repl.AttachStats(srv)
		log.Printf("dfanalyzer-server: primary, term %d, shipping WAL on %s (min-sync %d)",
			store.CurrentTerm(), repl.Addr(), *minSync)
	case *replFrom != "":
		id := *replID
		if id == "" {
			id, _ = os.Hostname()
		}
		var err error
		follower, err = replica.StartFollower(store, replica.FollowerOptions{
			Primary: *replFrom,
			ID:      id,
			OnError: func(err error) { log.Printf("dfanalyzer-server: replica: %v", err) },
		})
		if err != nil {
			log.Fatalf("dfanalyzer-server: replica: %v", err)
		}
		follower.AttachStats(srv)
		log.Printf("dfanalyzer-server: read replica %q following %s (writes rejected; reads and /stats served)", id, *replFrom)
	}

	if err := srv.Start(*addr); err != nil {
		log.Fatalf("dfanalyzer-server: %v", err)
	}
	defer srv.Close()
	log.Printf("dfanalyzer-server: serving on http://%s", srv.Addr())
	log.Printf("dfanalyzer-server: endpoints: POST /dataflow, POST /task, POST /tasks (batch), POST /frames (exactly-once), POST /query, GET /dataflow/{tag}, GET /stats, GET /metrics, GET /healthz, GET /readyz")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("dfanalyzer-server: served %d requests", srv.Requests())
	// Stop replication before the store: followers see a clean EOF, and a
	// follower must not apply into a closing store.
	if follower != nil {
		follower.Stop()
		if err := follower.Err(); err != nil {
			log.Printf("dfanalyzer-server: replica stopped with: %v", err)
		}
	}
	if repl != nil {
		if err := repl.Close(); err != nil {
			log.Printf("dfanalyzer-server: close replication: %v", err)
		}
	}
	if *dataDir != "" {
		// A final snapshot makes the next recovery instant; Close syncs
		// the WAL either way.
		if err := srv.Store().Snapshot(); err != nil {
			log.Printf("dfanalyzer-server: final snapshot: %v", err)
		}
		if err := srv.Store().Close(); err != nil {
			log.Printf("dfanalyzer-server: close store: %v", err)
		}
	}
}
