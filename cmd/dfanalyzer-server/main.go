// Command dfanalyzer-server runs the DfAnalyzer-compatible provenance
// storage and query service (HTTP 1.1, in-memory column store), with
// optional crash durability: -data-dir write-ahead logs every mutation,
// snapshots periodically (atomic temp+rename), and recovers on start by
// loading the latest snapshot and replaying the WAL tail.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/provlight/provlight/internal/dfanalyzer"
	"github.com/provlight/provlight/internal/wal"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:22000", "HTTP listen address")
	dataDir := flag.String("data-dir", "", "durability directory (WAL + snapshots); empty = in-memory only")
	fsync := flag.String("fsync", "interval", "WAL fsync policy: each|interval|off")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "background fsync period for -fsync interval")
	snapshotEvery := flag.Int("snapshot-every", 4096, "snapshot after this many logged operations (negative disables)")
	flag.Parse()

	var store *dfanalyzer.Store
	if *dataDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsync)
		if err != nil {
			log.Fatalf("dfanalyzer-server: %v", err)
		}
		start := time.Now()
		store, err = dfanalyzer.OpenStore(dfanalyzer.StoreOptions{
			Dir:           *dataDir,
			Sync:          policy,
			SyncInterval:  *fsyncInterval,
			SnapshotEvery: *snapshotEvery,
		})
		if err != nil {
			log.Fatalf("dfanalyzer-server: open store: %v", err)
		}
		log.Printf("dfanalyzer-server: recovered %s in %v (dataflows: %v)",
			*dataDir, time.Since(start).Round(time.Millisecond), store.Dataflows())
	}

	srv := dfanalyzer.NewServer(store)
	if err := srv.Start(*addr); err != nil {
		log.Fatalf("dfanalyzer-server: %v", err)
	}
	defer srv.Close()
	log.Printf("dfanalyzer-server: serving on http://%s", srv.Addr())
	log.Printf("dfanalyzer-server: endpoints: POST /dataflow, POST /task, POST /tasks (batch), POST /frames (exactly-once), POST /query, GET /dataflow/{tag}")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("dfanalyzer-server: served %d requests", srv.Requests())
	if *dataDir != "" {
		// A final snapshot makes the next recovery instant; Close syncs
		// the WAL either way.
		if err := srv.Store().Snapshot(); err != nil {
			log.Printf("dfanalyzer-server: final snapshot: %v", err)
		}
		if err := srv.Store().Close(); err != nil {
			log.Printf("dfanalyzer-server: close store: %v", err)
		}
	}
}
