// Command dfanalyzer-server runs the DfAnalyzer-compatible provenance
// storage and query service (HTTP 1.1, in-memory column store).
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"github.com/provlight/provlight/internal/dfanalyzer"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:22000", "HTTP listen address")
	flag.Parse()

	srv := dfanalyzer.NewServer(nil)
	if err := srv.Start(*addr); err != nil {
		log.Fatalf("dfanalyzer-server: %v", err)
	}
	defer srv.Close()
	log.Printf("dfanalyzer-server: serving on http://%s", srv.Addr())
	log.Printf("dfanalyzer-server: endpoints: POST /dataflow, POST /task, POST /tasks (batch), POST /query, GET /dataflow/{tag}")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("dfanalyzer-server: served %d requests", srv.Requests())
}
