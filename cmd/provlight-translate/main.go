// Command provlight-translate runs the ProvLight provenance data
// translator: it subscribes to device topics on the broker, decodes the
// binary frames, and forwards records to the selected provenance systems.
//
// Usage:
//
//	provlight-translate -broker 127.0.0.1:1883 \
//	    [-brokers node0:1883,node1:1883,...] \
//	    [-topic 'provlight/+/records'] [-workers 4] \
//	    [-sessions 4] [-group translators] \
//	    [-batch 64] [-linger 0s] \
//	    [-data-dir ./translator-data] [-fsync interval] \
//	    [-dfanalyzer http://host:port -dataflow tag] \
//	    [-provlake http://host:port] \
//	    [-provjson out.json] [-output-interval 30s] \
//	    [-stats-listen 127.0.0.1:9201] [-pprof]
//
// -stats-listen serves translator counters as JSON on GET /stats,
// Prometheus text exposition (including the end-to-end stage latency
// histograms) on GET /metrics, and a liveness probe on GET /healthz;
// -pprof additionally mounts net/http/pprof.
//
// With -sessions > 1 (or an explicit -group) the translator consumes
// through a shared-subscription consumer group ($share/<group>/<topic>):
// the broker partitions the device topics across the sessions, scaling
// the fan-in path while keeping each device's stream ordered. Several
// provlight-translate processes sharing one -group split the stream the
// same way across processes.
//
// With -brokers (a comma-separated list of clustered broker node
// addresses) the translator spreads its consumer-group sessions across
// the nodes — one home node per session, round-robin — so every node
// has a local group member and forwarded frames never need a second
// hop. Sessions are raised to at least the node count, and a session
// whose home node leaves the cluster fails over to the next address.
//
// With -data-dir the translator embeds a WAL-backed, snapshotting
// DfAnalyzer store: every delivered frame is persisted and deduplicated
// by its durable id before it is acknowledged back to the device, so a
// spooling client gets exactly-once capture across crashes of either
// process. The PROV-JSON document (-provjson) is written via temp-file +
// atomic rename — a crash mid-write can never leave a truncated document
// — and refreshed every -output-interval as well as on shutdown.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/provlight/provlight/internal/dfanalyzer"
	"github.com/provlight/provlight/internal/obs"
	"github.com/provlight/provlight/internal/provlake"
	"github.com/provlight/provlight/internal/translate"
	"github.com/provlight/provlight/internal/wal"
)

// writeAtomic writes the PROV-JSON document via temp-file + fsync +
// rename, so readers (and restarts) only ever see a complete document.
func writeAtomic(path string, pj *translate.PROVJSONTarget) error {
	err := wal.WriteFileAtomic(path, func(w io.Writer) error {
		_, werr := pj.WriteTo(w)
		return werr
	})
	if err != nil {
		return fmt.Errorf("write PROV-JSON: %w", err)
	}
	return nil
}

func main() {
	brokerAddr := flag.String("broker", "127.0.0.1:1883", "MQTT-SN broker address")
	brokerList := flag.String("brokers", "", "comma-separated clustered broker node addresses (spreads sessions across nodes; overrides -broker)")
	topic := flag.String("topic", "provlight/+/records", "topic filter to consume")
	clientID := flag.String("client-id", "translator", "broker client id (must differ between processes sharing a -group)")
	sessions := flag.Int("sessions", 1, "broker sessions in one consumer group (scales fan-in)")
	group := flag.String("group", "", "consumer-group name (default: the client id; implies a shared subscription)")
	workers := flag.Int("workers", 1, "parallel delivery workers")
	batch := flag.Int("batch", 64, "delivery micro-batch size (1 disables batching)")
	linger := flag.Duration("linger", 0, "max wait for an underfull batch to fill")
	dataDir := flag.String("data-dir", "", "embed a durable (WAL + snapshot) store in this directory; enables exactly-once acks for spooling clients")
	fsync := flag.String("fsync", "interval", "embedded store WAL fsync policy: each|interval|off")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "background fsync period for -fsync interval")
	snapshotEvery := flag.Int("snapshot-every", 4096, "embedded store snapshot period in operations (negative disables)")
	dfaURL := flag.String("dfanalyzer", "", "DfAnalyzer base URL (enables DfAnalyzer target)")
	dfaRetries := flag.Int("dfanalyzer-retries", 5, "total HTTP attempts per DfAnalyzer delivery before the error surfaces (1 disables retries)")
	dataflow := flag.String("dataflow", "provlight", "dataflow tag (DfAnalyzer and embedded store)")
	plURL := flag.String("provlake", "", "ProvLake base URL (enables ProvLake target)")
	provjson := flag.String("provjson", "", "write a PROV-JSON document to this file (atomically)")
	outputInterval := flag.Duration("output-interval", 30*time.Second, "refresh the PROV-JSON document this often (0: only on exit)")
	keepAlive := flag.Duration("keepalive", 0, "broker session keep-alive; a silent broker is declared dead after 1.5x this (0: library default). Lower it to fail over faster when a cluster node crashes")
	connectTimeout := flag.Duration("connect-timeout", 30*time.Second, "broker connect/subscribe deadline")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown drain deadline")
	statsListen := flag.String("stats-listen", "", "serve translator stats on this HTTP address (GET /stats, /metrics, /healthz)")
	enablePProf := flag.Bool("pprof", false, "also mount net/http/pprof on the -stats-listen mux")
	flag.Parse()

	reg := obs.NewRegistry()

	var targets []translate.Target
	var durable *dfanalyzer.Store
	if *dataDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsync)
		if err != nil {
			log.Fatalf("provlight-translate: %v", err)
		}
		start := time.Now()
		durable, err = dfanalyzer.OpenStore(dfanalyzer.StoreOptions{
			Dir:           *dataDir,
			Sync:          policy,
			SyncInterval:  *fsyncInterval,
			SnapshotEvery: *snapshotEvery,
		})
		if err != nil {
			log.Fatalf("provlight-translate: open store: %v", err)
		}
		log.Printf("provlight-translate: recovered %s in %v (%d tasks in %q)",
			*dataDir, time.Since(start).Round(time.Millisecond), durable.TaskCount(*dataflow), *dataflow)
		targets = append(targets, translate.NewStoreTarget(durable, *dataflow))
	} else {
		targets = append(targets, translate.NewMemoryTarget())
	}
	if *dfaURL != "" {
		cl := dfanalyzer.NewClient(*dfaURL)
		if *dfaRetries > 1 {
			cl.WithRetry(*dfaRetries, 100*time.Millisecond, 5*time.Second)
		}
		targets = append(targets, translate.NewDfAnalyzerTarget(cl, *dataflow))
	}
	if *plURL != "" {
		targets = append(targets, translate.NewProvLakeTarget(provlake.NewClient(*plURL)))
	}
	var pj *translate.PROVJSONTarget
	if *provjson != "" {
		pj = translate.NewPROVJSONTarget()
		targets = append(targets, pj)
	}

	// End-to-end acks tell spooling clients their frames are durable and
	// may be reclaimed from disk. Only say so when some target actually
	// is durable (-data-dir, or an external DfAnalyzer the operator
	// vouches for) — acking from a purely in-memory pipeline would let
	// clients discard frames this process loses on its next crash.
	disableAcks := *dataDir == "" && *dfaURL == ""
	if disableAcks {
		log.Printf("provlight-translate: no durable target (-data-dir / -dfanalyzer): end-to-end acks disabled, spooling clients will retain their frames")
	}

	var clusterAddrs []string
	if *brokerList != "" {
		for _, a := range strings.Split(*brokerList, ",") {
			clusterAddrs = append(clusterAddrs, strings.TrimSpace(a))
		}
	}

	connectCtx, cancelConnect := context.WithTimeout(context.Background(), *connectTimeout)
	tr, err := translate.New(connectCtx, translate.Config{
		Broker:       *brokerAddr,
		ClusterAddrs: clusterAddrs,
		ClientID:     *clientID,
		TopicFilter:  *topic,
		Sessions:     *sessions,
		Group:        *group,
		Workers:      *workers,
		BatchSize:    *batch,
		BatchLinger:  *linger,
		KeepAlive:    *keepAlive,
		Targets:      targets,
		DisableAcks:  disableAcks,
		OnError:      func(err error) { log.Printf("provlight-translate: %v", err) },
		Metrics:      reg,
	})
	cancelConnect()
	if err != nil {
		log.Fatalf("provlight-translate: %v", err)
	}
	from := *brokerAddr
	if len(clusterAddrs) > 0 {
		from = strings.Join(clusterAddrs, ",")
	}
	log.Printf("provlight-translate: consuming %q from %s with %d targets (%d sessions)",
		*topic, from, len(targets), tr.Sessions())

	if *statsListen != "" {
		addr, stop, err := obs.Serve(*statsListen, obs.NewMux(obs.MuxOptions{
			Registry: reg,
			Stats:    func() any { return tr.Stats() },
			PProf:    *enablePProf,
		}))
		if err != nil {
			log.Fatalf("provlight-translate: stats listener: %v", err)
		}
		defer stop()
		log.Printf("provlight-translate: serving stats on http://%s/stats (metrics on /metrics)", addr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(10 * time.Second)
	defer ticker.Stop()
	var output <-chan time.Time
	if pj != nil && *outputInterval > 0 {
		outputTicker := time.NewTicker(*outputInterval)
		defer outputTicker.Stop()
		output = outputTicker.C
	}
	for {
		select {
		case <-ticker.C:
			st := tr.Stats()
			log.Printf("provlight-translate: frames=%d records=%d batches=%d acks=%d decode_errs=%d delivery_errs=%d redials=%d",
				st.FramesReceived, st.RecordsTranslated, st.BatchesDelivered, st.AcksPublished, st.DecodeErrors, st.DeliveryErrors, st.SessionRedials)
		case <-output:
			if err := writeAtomic(*provjson, pj); err != nil {
				log.Printf("provlight-translate: %v", err)
			}
		case <-sig:
			shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
			if err := tr.Shutdown(shutdownCtx); err != nil {
				log.Printf("provlight-translate: shutdown: %v", err)
			}
			cancel()
			if pj != nil {
				if err := writeAtomic(*provjson, pj); err != nil {
					log.Fatalf("provlight-translate: %v", err)
				}
				log.Printf("provlight-translate: wrote %s", *provjson)
			}
			if durable != nil {
				if err := durable.Snapshot(); err != nil {
					log.Printf("provlight-translate: final snapshot: %v", err)
				}
				if err := durable.Close(); err != nil {
					log.Printf("provlight-translate: close store: %v", err)
				}
			}
			return
		}
	}
}
