// Command provlight-translate runs the ProvLight provenance data
// translator: it subscribes to device topics on the broker, decodes the
// binary frames, and forwards records to the selected provenance systems.
//
// Usage:
//
//	provlight-translate -broker 127.0.0.1:1883 \
//	    [-topic 'provlight/+/records'] [-workers 4] \
//	    [-sessions 4] [-group translators] \
//	    [-batch 64] [-linger 0s] \
//	    [-dfanalyzer http://host:port -dataflow tag] \
//	    [-provlake http://host:port] [-provjson out.json]
//
// With -sessions > 1 (or an explicit -group) the translator consumes
// through a shared-subscription consumer group ($share/<group>/<topic>):
// the broker partitions the device topics across the sessions, scaling
// the fan-in path while keeping each device's stream ordered. Several
// provlight-translate processes sharing one -group split the stream the
// same way across processes.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/provlight/provlight/internal/dfanalyzer"
	"github.com/provlight/provlight/internal/provlake"
	"github.com/provlight/provlight/internal/translate"
)

func main() {
	brokerAddr := flag.String("broker", "127.0.0.1:1883", "MQTT-SN broker address")
	topic := flag.String("topic", "provlight/+/records", "topic filter to consume")
	clientID := flag.String("client-id", "translator", "broker client id (must differ between processes sharing a -group)")
	sessions := flag.Int("sessions", 1, "broker sessions in one consumer group (scales fan-in)")
	group := flag.String("group", "", "consumer-group name (default: the client id; implies a shared subscription)")
	workers := flag.Int("workers", 1, "parallel delivery workers")
	batch := flag.Int("batch", 64, "delivery micro-batch size (1 disables batching)")
	linger := flag.Duration("linger", 0, "max wait for an underfull batch to fill")
	dfaURL := flag.String("dfanalyzer", "", "DfAnalyzer base URL (enables DfAnalyzer target)")
	dataflow := flag.String("dataflow", "provlight", "DfAnalyzer dataflow tag")
	plURL := flag.String("provlake", "", "ProvLake base URL (enables ProvLake target)")
	provjson := flag.String("provjson", "", "write a PROV-JSON document to this file on exit")
	connectTimeout := flag.Duration("connect-timeout", 30*time.Second, "broker connect/subscribe deadline")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown drain deadline")
	flag.Parse()

	var targets []translate.Target
	mem := translate.NewMemoryTarget()
	targets = append(targets, mem)
	if *dfaURL != "" {
		targets = append(targets, translate.NewDfAnalyzerTarget(dfanalyzer.NewClient(*dfaURL), *dataflow))
	}
	if *plURL != "" {
		targets = append(targets, translate.NewProvLakeTarget(provlake.NewClient(*plURL)))
	}
	var pj *translate.PROVJSONTarget
	if *provjson != "" {
		pj = translate.NewPROVJSONTarget()
		targets = append(targets, pj)
	}

	connectCtx, cancelConnect := context.WithTimeout(context.Background(), *connectTimeout)
	tr, err := translate.New(connectCtx, translate.Config{
		Broker:      *brokerAddr,
		ClientID:    *clientID,
		TopicFilter: *topic,
		Sessions:    *sessions,
		Group:       *group,
		Workers:     *workers,
		BatchSize:   *batch,
		BatchLinger: *linger,
		Targets:     targets,
		OnError:     func(err error) { log.Printf("provlight-translate: %v", err) },
	})
	cancelConnect()
	if err != nil {
		log.Fatalf("provlight-translate: %v", err)
	}
	log.Printf("provlight-translate: consuming %q from %s with %d targets (%d sessions)",
		*topic, *brokerAddr, len(targets), tr.Sessions())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(10 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			st := tr.Stats()
			log.Printf("provlight-translate: frames=%d records=%d batches=%d decode_errs=%d delivery_errs=%d",
				st.FramesReceived, st.RecordsTranslated, st.BatchesDelivered, st.DecodeErrors, st.DeliveryErrors)
		case <-sig:
			shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
			if err := tr.Shutdown(shutdownCtx); err != nil {
				log.Printf("provlight-translate: shutdown: %v", err)
			}
			cancel()
			if pj != nil {
				f, err := os.Create(*provjson)
				if err != nil {
					log.Fatalf("provlight-translate: %v", err)
				}
				if _, err := pj.WriteTo(f); err != nil {
					log.Fatalf("provlight-translate: write PROV-JSON: %v", err)
				}
				f.Close()
				log.Printf("provlight-translate: wrote %s", *provjson)
			}
			return
		}
	}
}
