// Command e2clab-run deploys an Edge-to-Cloud experiment from E2Clab-style
// configuration files and runs its workflow with ProvLight provenance
// capture end to end (paper §V).
//
// Usage:
//
//	e2clab-run -layers layers_services.yaml -network network.yaml -workflow workflow.yaml
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/provlight/provlight/internal/e2clab"
)

func main() {
	layersPath := flag.String("layers", "layers_services.yaml", "layers & services configuration")
	networkPath := flag.String("network", "", "network configuration (optional)")
	workflowPath := flag.String("workflow", "workflow.yaml", "workflow configuration")
	flag.Parse()

	layersSrc, err := os.ReadFile(*layersPath)
	if err != nil {
		log.Fatalf("e2clab-run: %v", err)
	}
	cfg, err := e2clab.ParseLayersServices(string(layersSrc))
	if err != nil {
		log.Fatalf("e2clab-run: %v", err)
	}
	if *networkPath != "" {
		networkSrc, err := os.ReadFile(*networkPath)
		if err != nil {
			log.Fatalf("e2clab-run: %v", err)
		}
		if err := cfg.ParseNetwork(string(networkSrc)); err != nil {
			log.Fatalf("e2clab-run: %v", err)
		}
	}
	workflowSrc, err := os.ReadFile(*workflowPath)
	if err != nil {
		log.Fatalf("e2clab-run: %v", err)
	}
	if err := cfg.ParseWorkflow(string(workflowSrc)); err != nil {
		log.Fatalf("e2clab-run: %v", err)
	}

	log.Printf("e2clab-run: deploying %d layers, %d edge clients",
		len(cfg.Layers), cfg.EdgeClients())
	dep, err := e2clab.Deploy(cfg)
	if err != nil {
		log.Fatalf("e2clab-run: deploy: %v", err)
	}
	defer dep.Close()
	log.Printf("e2clab-run: broker on udp://%s, DfAnalyzer on http://%s",
		dep.Provenance.Server.Addr(), dep.Provenance.DfAnalyzer.Addr())

	rep, err := dep.RunWorkflow()
	if err != nil {
		log.Fatalf("e2clab-run: workflow: %v", err)
	}
	fmt.Printf("devices:          %d\n", rep.Devices)
	fmt.Printf("records captured: %d\n", rep.RecordsCaptured)
	fmt.Printf("tasks stored:     %d (DfAnalyzer)\n", rep.RecordsStored)
	fmt.Printf("elapsed:          %v\n", rep.Elapsed)
}
