// Benchmark harness for the paper's evaluation: one testing.B benchmark
// per table and figure (simulator-backed, reporting the headline metric of
// each as a custom unit), plus real-path benchmarks of the actual codecs,
// broker, and capture clients on localhost.
//
// Run with: go test -bench=. -benchmem
package provlight_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/provlight/provlight"
	"github.com/provlight/provlight/internal/broker"
	"github.com/provlight/provlight/internal/device"
	"github.com/provlight/provlight/internal/dfanalyzer"
	"github.com/provlight/provlight/internal/experiment"
	"github.com/provlight/provlight/internal/mqttsn"
	"github.com/provlight/provlight/internal/netem"
	"github.com/provlight/provlight/internal/obs"
	"github.com/provlight/provlight/internal/provdm"
	"github.com/provlight/provlight/internal/provlake"
	"github.com/provlight/provlight/internal/translate"
	"github.com/provlight/provlight/internal/wire"
	"github.com/provlight/provlight/internal/workload"
)

// ---------------------------------------------------------------------------
// Paper tables and figures (simulation-backed; the custom metric is the
// paper's headline number for that artifact).
// ---------------------------------------------------------------------------

func reportOverhead(b *testing.B, name string, mean float64) {
	b.ReportMetric(mean*100, name+"_%overhead")
}

func BenchmarkTableII_BaselineOverheadEdge(b *testing.B) {
	var last experiment.TableResult
	for i := 0; i < b.N; i++ {
		last = experiment.TableII()
	}
	for _, c := range last.Cells {
		if c.Config.Workload.TaskDuration == 500*time.Millisecond && c.Config.Workload.AttributesPerTask == 100 {
			reportOverhead(b, string(c.Config.System), c.Overhead.Mean)
		}
	}
}

func BenchmarkTableIII_ProvLakeGrouping(b *testing.B) {
	var last experiment.TableResult
	for i := 0; i < b.N; i++ {
		last = experiment.TableIII()
	}
	for _, c := range last.Cells {
		if c.Config.Link.BandwidthBps == 25e3 && c.Config.Workload.TaskDuration == 500*time.Millisecond {
			reportOverhead(b, fmt.Sprintf("25Kbit_g%d", c.Config.GroupSize), c.Overhead.Mean)
		}
	}
}

func BenchmarkTableVII_ProvLightOverheadEdge(b *testing.B) {
	var last experiment.TableResult
	for i := 0; i < b.N; i++ {
		last = experiment.TableVII()
	}
	for _, c := range last.Cells {
		if c.Config.Workload.AttributesPerTask == 100 {
			reportOverhead(b, fmt.Sprintf("%.1fs", c.Config.Workload.TaskDuration.Seconds()), c.Overhead.Mean)
		}
	}
}

func BenchmarkTableVIII_ProvLightGrouping(b *testing.B) {
	var last experiment.TableResult
	for i := 0; i < b.N; i++ {
		last = experiment.TableVIII()
	}
	for _, c := range last.Cells {
		if c.Config.Link.BandwidthBps == 25e3 && c.Config.Workload.TaskDuration == 500*time.Millisecond {
			reportOverhead(b, fmt.Sprintf("25Kbit_g%d", c.Config.GroupSize), c.Overhead.Mean)
		}
	}
}

func BenchmarkTableIX_Scalability(b *testing.B) {
	var last experiment.TableResult
	for i := 0; i < b.N; i++ {
		last = experiment.TableIX()
	}
	for _, c := range last.Cells {
		reportOverhead(b, fmt.Sprintf("%ddevices", c.Config.Devices), c.Overhead.Mean)
	}
}

func BenchmarkTableX_CloudOverhead(b *testing.B) {
	var last experiment.TableResult
	for i := 0; i < b.N; i++ {
		last = experiment.TableX()
	}
	for _, c := range last.Cells {
		if c.Config.Workload.TaskDuration == 500*time.Millisecond {
			reportOverhead(b, string(c.Config.System), c.Overhead.Mean)
		}
	}
}

func figure6Cell(b *testing.B, sys experiment.System) experiment.Result {
	b.Helper()
	var r experiment.Result
	for i := 0; i < b.N; i++ {
		r = experiment.Run(experiment.RunConfig{
			System:      sys,
			Workload:    workload.Default,
			Device:      device.A8M3,
			Link:        netem.GigabitEdge,
			Repetitions: 10,
			Seed:        42,
		})
	}
	return r
}

func BenchmarkFigure6a_CPU(b *testing.B) {
	for _, sys := range experiment.AllSystems {
		sys := sys
		b.Run(string(sys), func(b *testing.B) {
			r := figure6Cell(b, sys)
			b.ReportMetric(r.CPUPercent, "cpu_%")
		})
	}
}

func BenchmarkFigure6b_Memory(b *testing.B) {
	for _, sys := range experiment.AllSystems {
		sys := sys
		b.Run(string(sys), func(b *testing.B) {
			r := figure6Cell(b, sys)
			b.ReportMetric(r.MemPercent, "mem_%")
		})
	}
}

func BenchmarkFigure6c_Network(b *testing.B) {
	for _, sys := range experiment.AllSystems {
		sys := sys
		b.Run(string(sys), func(b *testing.B) {
			r := figure6Cell(b, sys)
			b.ReportMetric(r.NetKBps, "KB/s")
		})
	}
}

func BenchmarkFigure6d_Power(b *testing.B) {
	for _, sys := range experiment.AllSystems {
		sys := sys
		b.Run(string(sys), func(b *testing.B) {
			r := figure6Cell(b, sys)
			b.ReportMetric(r.PowerW, "watts")
			b.ReportMetric(r.PowerOverheadPct, "power_%overhead")
		})
	}
}

func BenchmarkAblations_DesignChoices(b *testing.B) {
	var last experiment.TableResult
	for i := 0; i < b.N; i++ {
		last = experiment.Ablations()
	}
	for i, c := range last.Cells {
		reportOverhead(b, fmt.Sprintf("v%d", i), c.Overhead.Mean)
	}
}

// ---------------------------------------------------------------------------
// Real-path benchmarks: actual codecs, broker, and capture clients.
// ---------------------------------------------------------------------------

func BenchmarkWireEncode100Attrs(b *testing.B) {
	_, end := workload.Default.SampleTaskRecords("wf")
	enc := wire.Encoder{}
	b.ReportAllocs()
	var size int
	for i := 0; i < b.N; i++ {
		frame, err := enc.EncodeFrame(&end)
		if err != nil {
			b.Fatal(err)
		}
		size = len(frame)
	}
	b.ReportMetric(float64(size), "frame_bytes")
}

func BenchmarkWireDecode100Attrs(b *testing.B) {
	_, end := workload.Default.SampleTaskRecords("wf")
	frame, err := (&wire.Encoder{}).EncodeFrame(&end)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wire.DecodeFrame(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireGroupEncode50(b *testing.B) {
	recs := workload.Default.Records("wf", time.Unix(0, 0))
	enc := wire.Encoder{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		batch := make([]*provlight.Record, 50)
		for j := range batch {
			batch[j] = &recs[1+j]
		}
		if _, err := enc.EncodeFrame(batch...); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCapturePipeline measures end-to-end capture cost through the real
// client -> UDP broker -> translator path with a given publish window and
// optional netem shaping of the device uplink.
func benchCapturePipeline(b *testing.B, window int, delay time.Duration) {
	b.Helper()
	mem := provlight.NewMemoryTarget()
	server, err := provlight.StartServer(context.Background(), provlight.ServerConfig{
		Addr:    "127.0.0.1:0",
		Targets: []provlight.Target{mem},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer server.Close()
	cfg := provlight.Config{
		Broker:     server.Addr(),
		ClientID:   "bench-device",
		WindowSize: window,
	}
	if delay > 0 {
		raw, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		shaped := netem.WrapPacketConn(raw, netem.Profile{Delay: delay})
		defer shaped.Close()
		cfg.Conn = shaped
	}
	client, err := provlight.NewClient(context.Background(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()

	wf := client.NewWorkflow("bench")
	if err := wf.Begin(); err != nil {
		b.Fatal(err)
	}
	attrs := provlight.Attrs(map[string]any{"in": make([]byte, 100)})
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		task := wf.NewTask(fmt.Sprintf("t%d", i), "bench")
		captureOrWait(b, func() error {
			return task.Begin(provlight.NewData(fmt.Sprintf("in%d", i), attrs))
		})
		captureOrWait(b, func() error {
			return task.End(provlight.NewData(fmt.Sprintf("out%d", i), attrs))
		})
	}
	if err := client.Flush(); err != nil {
		b.Fatal(err)
	}
	elapsed := time.Since(start)
	b.StopTimer()
	st := client.Stats()
	b.ReportMetric(float64(st.BytesPublished)/float64(b.N), "wire_bytes/task")
	b.ReportMetric(float64(st.FramesPublished)/elapsed.Seconds(), "frames/s")
}

// captureOrWait retries ErrQueueFull with a short backoff: the bench's
// stand-in for an application-level policy, now that a full transmit
// queue fails fast (counting StatsSnapshot.QueueFull) instead of
// blocking the workload.
func captureOrWait(b *testing.B, capture func() error) {
	b.Helper()
	for {
		err := capture()
		if err == nil {
			return
		}
		if errors.Is(err, provlight.ErrQueueFull) {
			time.Sleep(200 * time.Microsecond)
			continue
		}
		b.Fatal(err)
	}
}

// BenchmarkPipelineLocal compares the in-memory transmit queue with the
// disk spool (store-and-forward) on the same loopback pipeline. The
// spooled path pays a WAL append per frame plus the end-to-end
// acknowledgement round trip; the acceptance budget is 2x of the
// in-memory path's frames/s.
func BenchmarkPipelineLocal(b *testing.B) {
	for _, mode := range []string{"memory", "spooled"} {
		b.Run(mode, func(b *testing.B) {
			mem := provlight.NewMemoryTarget()
			server, err := provlight.StartServer(context.Background(), provlight.ServerConfig{
				Addr:    "127.0.0.1:0",
				Targets: []provlight.Target{mem},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer server.Close()
			cfg := provlight.Config{
				Broker:     server.Addr(),
				ClientID:   "bench-device",
				WindowSize: 16,
			}
			// The bench measures the instrumented capture path — frame
			// tracing on (the default) and a live metrics registry — so a
			// regression in observability overhead shows up here, not just
			// in production. BENCH_OBS=off measures the uninstrumented
			// path for comparison.
			if os.Getenv("BENCH_OBS") == "off" {
				cfg.DisableTrace = true
			} else {
				cfg.Metrics = obs.NewRegistry()
			}
			if mode == "spooled" {
				cfg.SpoolDir = b.TempDir()
				cfg.AckWindow = 256
			}
			client, err := provlight.NewClient(context.Background(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			wf := client.NewWorkflow("bench")
			if err := wf.Begin(); err != nil {
				b.Fatal(err)
			}
			attrs := provlight.Attrs(map[string]any{"in": make([]byte, 100)})
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				task := wf.NewTask(fmt.Sprintf("t%d", i), "bench")
				captureOrWait(b, func() error {
					return task.Begin(provlight.NewData(fmt.Sprintf("in%d", i), attrs))
				})
				captureOrWait(b, func() error {
					return task.End(provlight.NewData(fmt.Sprintf("out%d", i), attrs))
				})
			}
			if err := client.Flush(); err != nil {
				b.Fatal(err)
			}
			elapsed := time.Since(start)
			b.StopTimer()
			frames := float64(2*b.N + 1)
			b.ReportMetric(frames/elapsed.Seconds(), "frames/s")
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := client.Shutdown(ctx); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkProvLightCaptureRealPipeline sweeps the publish window on
// localhost and through a 50 ms one-way netem uplink. window=1 is the
// pre-windowing stop-and-wait behaviour; window=16 is the default.
func BenchmarkProvLightCaptureRealPipeline(b *testing.B) {
	for _, bc := range []struct {
		name   string
		window int
		delay  time.Duration
	}{
		{"local/window1", 1, 0},
		{"local/window16", 16, 0},
		{"netem50ms/window1", 1, 50 * time.Millisecond},
		{"netem50ms/window16", 16, 50 * time.Millisecond},
	} {
		b.Run(bc.name, func(b *testing.B) {
			benchCapturePipeline(b, bc.window, bc.delay)
		})
	}
}

// BenchmarkMQTTSNPublishWindowed sweeps the in-flight window of the raw
// MQTT-SN QoS 2 publish engine over a 50 ms one-way netem uplink,
// reporting achieved frames/s. At window 1 throughput is capped by the
// two-round-trip handshake; wider windows overlap handshakes.
func BenchmarkMQTTSNPublishWindowed(b *testing.B) {
	for _, window := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("window%d", window), func(b *testing.B) {
			gw, err := broker.New(broker.Config{Addr: "127.0.0.1:0"})
			if err != nil {
				b.Fatal(err)
			}
			defer gw.Close()
			raw, err := net.ListenPacket("udp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			shaped := netem.WrapPacketConn(raw, netem.Profile{Delay: 50 * time.Millisecond})
			defer shaped.Close()
			c, err := mqttsn.NewClient(mqttsn.ClientConfig{
				ClientID:       "bench-windowed",
				Gateway:        gw.Addr(),
				Conn:           shaped,
				RetryInterval:  2 * time.Second,
				InflightWindow: window,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			if err := c.Connect(); err != nil {
				b.Fatal(err)
			}
			if _, err := c.RegisterTopic("bench/windowed"); err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, 128)
			b.ResetTimer()
			start := time.Now()
			acks := make([]<-chan error, 0, b.N)
			for i := 0; i < b.N; i++ {
				acks = append(acks, c.PublishAsync("bench/windowed", payload, mqttsn.QoS2))
			}
			for i, ch := range acks {
				if err := <-ch; err != nil {
					b.Fatalf("publish %d: %v", i, err)
				}
			}
			b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "frames/s")
		})
	}
}

// BenchmarkBrokerFanIn measures the broker's fan-in ceiling: many devices
// publishing QoS 2 frames on per-workflow topics into one consumer group
// whose members sit behind a 25 ms netem uplink (the latency-bound
// configuration where one subscriber session's outbound window caps the
// whole continuum). Sweeping the group size shows the aggregate window —
// and thus frames/s — scaling with the member count.
func BenchmarkBrokerFanIn(b *testing.B) {
	for _, members := range []int{1, 2, 4} {
		members := members
		b.Run(fmt.Sprintf("netem25ms/sessions%d", members), func(b *testing.B) {
			gw, err := broker.New(broker.Config{Addr: "127.0.0.1:0", RetryInterval: 2 * time.Second})
			if err != nil {
				b.Fatal(err)
			}
			defer gw.Close()
			var received atomic.Int64
			for m := 0; m < members; m++ {
				raw, err := net.ListenPacket("udp", "127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				shaped := netem.WrapPacketConn(raw, netem.Profile{Delay: 25 * time.Millisecond})
				c, err := mqttsn.NewClient(mqttsn.ClientConfig{
					ClientID:      fmt.Sprintf("fanin-member-%d", m),
					Gateway:       gw.Addr(),
					Conn:          shaped,
					RetryInterval: 2 * time.Second,
					MaxRetries:    10,
					CleanSession:  true,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				defer shaped.Close()
				if err := c.Connect(); err != nil {
					b.Fatal(err)
				}
				if err := c.Subscribe("$share/bench/fanin/+/records", mqttsn.QoS2, func(string, []byte) {
					received.Add(1)
				}); err != nil {
					b.Fatal(err)
				}
			}
			const pubs = 8
			const topicsPerPub = 4 // 32 workflow topics spread over the group
			clients := make([]*mqttsn.Client, pubs)
			for p := range clients {
				c, err := mqttsn.NewClient(mqttsn.ClientConfig{
					ClientID:       fmt.Sprintf("fanin-pub-%d", p),
					Gateway:        gw.Addr(),
					RetryInterval:  time.Second,
					MaxRetries:     10,
					InflightWindow: 64,
					CleanSession:   true,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				if err := c.Connect(); err != nil {
					b.Fatal(err)
				}
				clients[p] = c
			}
			payload := make([]byte, 128)
			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			for p := 0; p < pubs; p++ {
				n := b.N / pubs
				if p < b.N%pubs {
					n++
				}
				if n == 0 {
					continue
				}
				wg.Add(1)
				go func(p, n int) {
					defer wg.Done()
					acks := make([]<-chan error, 0, n)
					for i := 0; i < n; i++ {
						topic := fmt.Sprintf("fanin/%d/records", p*topicsPerPub+i%topicsPerPub)
						acks = append(acks, clients[p].PublishAsync(topic, payload, mqttsn.QoS2))
					}
					for i, ch := range acks {
						if err := <-ch; err != nil {
							b.Errorf("publisher %d frame %d: %v", p, i, err)
							return
						}
					}
				}(p, n)
			}
			wg.Wait()
			deadline := time.Now().Add(60*time.Second + time.Duration(b.N)*20*time.Millisecond)
			for received.Load() < int64(b.N) {
				if time.Now().After(deadline) {
					b.Fatalf("group received %d/%d frames", received.Load(), b.N)
				}
				time.Sleep(time.Millisecond)
			}
			b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "frames/s")
		})
	}
}

// BenchmarkBrokerRouteQoS1 measures the broker's publish -> match ->
// deliver path (one publisher, one wildcard subscriber) on localhost,
// with allocation accounting across the whole route path.
func BenchmarkBrokerRouteQoS1(b *testing.B) {
	gw, err := broker.New(broker.Config{Addr: "127.0.0.1:0", RetryInterval: 200 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	defer gw.Close()
	newClient := func(id string) *mqttsn.Client {
		c, err := mqttsn.NewClient(mqttsn.ClientConfig{
			ClientID:      id,
			Gateway:       gw.Addr(),
			RetryInterval: 200 * time.Millisecond,
			MaxRetries:    10,
			CleanSession:  true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Connect(); err != nil {
			b.Fatal(err)
		}
		return c
	}
	sub := newClient("bench-route-sub")
	defer sub.Close()
	var received atomic.Int64
	if err := sub.Subscribe("bench/+/route", mqttsn.QoS1, func(string, []byte) {
		received.Add(1)
	}); err != nil {
		b.Fatal(err)
	}
	pub := newClient("bench-route-pub")
	defer pub.Close()
	payload := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pub.Publish("bench/dev/route", payload, mqttsn.QoS1); err != nil {
			b.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for received.Load() < int64(b.N) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	b.StopTimer()
	if got := received.Load(); got < int64(b.N) {
		b.Fatalf("subscriber received %d/%d messages", got, b.N)
	}
}

// BenchmarkDfAnalyzerCaptureRealHTTP measures the baseline's blocking
// HTTP request/response capture path on localhost.
func BenchmarkDfAnalyzerCaptureRealHTTP(b *testing.B) {
	srv := dfanalyzer.NewServer(nil)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client := dfanalyzer.NewClient("http://" + srv.Addr())
	df := &dfanalyzer.Dataflow{
		Tag: "bench",
		Transformations: []dfanalyzer.Transformation{{
			Tag: "t",
			Output: []dfanalyzer.SetSchema{{Tag: "t_output", Attributes: []dfanalyzer.Attribute{
				{Name: "v", Type: dfanalyzer.Numeric},
			}}},
		}},
	}
	if err := client.RegisterDataflow(df); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg := &dfanalyzer.TaskMsg{
			Dataflow: "bench", Transformation: "t", ID: fmt.Sprintf("task%d", i),
			Status: dfanalyzer.StatusFinished,
			Sets: []dfanalyzer.SetData{{Tag: "t_output",
				Elements: []dfanalyzer.Element{{float64(i)}}}},
		}
		if err := client.SendTask(msg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProvLakeCaptureRealHTTP measures the second baseline, with and
// without message grouping.
func BenchmarkProvLakeCaptureRealHTTP(b *testing.B) {
	for _, group := range []int{0, 10} {
		group := group
		b.Run(fmt.Sprintf("group%d", group), func(b *testing.B) {
			srv := provlake.NewServer(nil)
			if err := srv.Start("127.0.0.1:0"); err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			var opts []provlake.Option
			if group > 0 {
				opts = append(opts, provlake.WithGroupSize(group))
			}
			client := provlake.NewClient("http://"+srv.Addr(), opts...)
			recs := workload.Default.Records("wf", time.Now())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := client.Capture(&recs[1+i%(len(recs)-2)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := client.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkSimulatedEdgeRun measures the simulator itself: one full
// Table I cell (10 repetitions x 100 tasks) per iteration.
func BenchmarkSimulatedEdgeRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.Run(experiment.RunConfig{
			System:      experiment.ProvLight,
			Workload:    workload.Default,
			Device:      device.A8M3,
			Link:        netem.GigabitEdge,
			Repetitions: 10,
			Seed:        1,
		})
	}
}

// benchStoreDataflow registers a small spec on a fresh store.
func benchStoreDataflow(b *testing.B) *dfanalyzer.Store {
	b.Helper()
	store := dfanalyzer.NewStore()
	df := &dfanalyzer.Dataflow{
		Tag: "bench",
		Transformations: []dfanalyzer.Transformation{{
			Tag: "t",
			Output: []dfanalyzer.SetSchema{{Tag: "t_output", Attributes: []dfanalyzer.Attribute{
				{Name: "epoch", Type: dfanalyzer.Numeric},
				{Name: "loss", Type: dfanalyzer.Numeric},
				{Name: "host", Type: dfanalyzer.Text},
			}}},
		}},
	}
	if err := store.RegisterDataflow(df); err != nil {
		b.Fatal(err)
	}
	return store
}

func benchTaskMsg(i int) *dfanalyzer.TaskMsg {
	return &dfanalyzer.TaskMsg{
		Dataflow: "bench", Transformation: "t", ID: fmt.Sprintf("task%d", i),
		Status: dfanalyzer.StatusFinished,
		Sets: []dfanalyzer.SetData{{Tag: "t_output", Elements: []dfanalyzer.Element{
			{float64(i), 1.0 / float64(i+1), "edge-1"},
		}}},
	}
}

// BenchmarkStoreIngestBatch measures the store append path: one task per
// IngestTasks call versus 64 per call (one shard lock per batch, columns
// resolved positionally).
func BenchmarkStoreIngestBatch(b *testing.B) {
	for _, batch := range []int{1, 64} {
		batch := batch
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			store := benchStoreDataflow(b)
			msgs := make([]*dfanalyzer.TaskMsg, batch)
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n += batch {
				for j := range msgs {
					msgs[j] = benchTaskMsg(n + j)
				}
				if err := store.IngestTasks(msgs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreSelectTopK measures the OrderBy+Limit hit path over 100k
// rows: a bounded top-k heap instead of sorting every match.
func BenchmarkStoreSelectTopK(b *testing.B) {
	store := benchStoreDataflow(b)
	const rows = 100_000
	const batch = 256
	msgs := make([]*dfanalyzer.TaskMsg, 0, batch)
	for i := 0; i < rows; i += batch {
		msgs = msgs[:0]
		for j := 0; j < batch; j++ {
			msgs = append(msgs, benchTaskMsg(i+j))
		}
		if err := store.IngestTasks(msgs); err != nil {
			b.Fatal(err)
		}
	}
	q := dfanalyzer.Query{
		Dataflow: "bench", Set: "t_output",
		Where:   []dfanalyzer.Pred{{Attr: "loss", Op: dfanalyzer.Lt, Value: 0.5}},
		OrderBy: "epoch", Desc: true, Limit: 10,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := store.Select(context.Background(), q)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != 10 {
			b.Fatalf("rows = %d, want 10", len(out))
		}
	}
}

// BenchmarkTranslatorPipeline measures end-to-end server-side ingestion:
// device client -> UDP broker -> translator -> DfAnalyzer HTTP server ->
// column store, sweeping the translator micro-batch size. The legacy case
// replays the pre-PR per-frame target (full-history spec re-derivation
// plus one POST /task per record) as the measured baseline.
func BenchmarkTranslatorPipeline(b *testing.B) {
	cases := []struct {
		name   string
		batch  int
		target func(url string) provlight.Target
	}{
		{"legacy", 1, func(url string) provlight.Target {
			return &legacyDfAnalyzerTarget{client: dfanalyzer.NewClient(url), dataflow: "bench"}
		}},
		{"batch1", 1, func(url string) provlight.Target { return provlight.NewDfAnalyzerTarget(url, "bench") }},
		{"batch16", 16, func(url string) provlight.Target { return provlight.NewDfAnalyzerTarget(url, "bench") }},
		{"batch64", 64, func(url string) provlight.Target { return provlight.NewDfAnalyzerTarget(url, "bench") }},
	}
	for _, bc := range cases {
		bc := bc
		b.Run(bc.name, func(b *testing.B) {
			dfaSrv := dfanalyzer.NewServer(nil)
			if err := dfaSrv.Start("127.0.0.1:0"); err != nil {
				b.Fatal(err)
			}
			defer dfaSrv.Close()
			server, err := provlight.StartServer(context.Background(), provlight.ServerConfig{
				Addr:        "127.0.0.1:0",
				Targets:     []provlight.Target{bc.target("http://" + dfaSrv.Addr())},
				BatchSize:   bc.batch,
				BatchLinger: time.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer server.Close()
			client, err := provlight.NewClient(context.Background(), provlight.Config{
				Broker:     server.Addr(),
				ClientID:   "bench-ingest",
				WindowSize: 64,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer client.Close()
			wf := client.NewWorkflow("bench")
			if err := wf.Begin(); err != nil {
				b.Fatal(err)
			}
			attrs := provlight.Attrs(map[string]any{"epoch": int64(0), "loss": 0.5})
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				task := wf.NewTask(fmt.Sprintf("t%d", i), "t")
				if err := task.Begin(provlight.NewData(fmt.Sprintf("in%d", i), attrs)); err != nil {
					b.Fatal(err)
				}
				if err := task.End(provlight.NewData(fmt.Sprintf("out%d", i), attrs)); err != nil {
					b.Fatal(err)
				}
			}
			if err := client.Flush(); err != nil {
				b.Fatal(err)
			}
			// Flush only guarantees the broker holds the frames; wait until
			// every task reached the store through the translator. The
			// failsafe scales with b.N so the quadratic legacy baseline
			// isn't mistaken for a stall.
			deadline := time.Now().Add(30*time.Second + time.Duration(b.N)*10*time.Millisecond)
			for dfaSrv.Store().TaskCount("bench") < b.N {
				if time.Now().After(deadline) {
					b.Fatalf("store has %d tasks, want %d", dfaSrv.Store().TaskCount("bench"), b.N)
				}
				time.Sleep(time.Millisecond)
			}
			server.Drain()
			elapsed := time.Since(start)
			b.StopTimer()
			frames := client.Stats().FramesPublished
			b.ReportMetric(float64(frames)/elapsed.Seconds(), "frames/s")
		})
	}
}

// BenchmarkTranslatorPipelineSessions is the fan-in variant of
// BenchmarkTranslatorPipeline: 8 devices capture concurrently through the
// real broker into ONE translator whose consumer-group session count is
// swept, with every translator session behind a 25 ms netem uplink. On
// this latency-bound configuration the broker->translator QoS 2 window is
// the bottleneck, so frames/s scales with the number of group sessions.
func BenchmarkTranslatorPipelineSessions(b *testing.B) {
	for _, sessions := range []int{1, 2, 4} {
		sessions := sessions
		b.Run(fmt.Sprintf("netem25ms/sessions%d", sessions), func(b *testing.B) {
			gw, err := broker.New(broker.Config{Addr: "127.0.0.1:0", RetryInterval: 2 * time.Second})
			if err != nil {
				b.Fatal(err)
			}
			defer gw.Close()
			mem := translate.NewMemoryTarget()
			tr, err := translate.New(context.Background(), translate.Config{
				Broker:        gw.Addr(),
				ClientID:      "bench-group",
				Sessions:      sessions,
				RetryInterval: 2 * time.Second,
				MaxRetries:    10,
				Targets:       []translate.Target{mem},
				DialConn: func() (net.PacketConn, error) {
					raw, err := net.ListenPacket("udp", "127.0.0.1:0")
					if err != nil {
						return nil, err
					}
					return netem.WrapPacketConn(raw, netem.Profile{Delay: 25 * time.Millisecond}), nil
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer tr.Close()

			const devices = 8
			clients := make([]*provlight.Client, devices)
			workflows := make([]*provlight.Workflow, devices)
			for d := range clients {
				c, err := provlight.NewClient(context.Background(), provlight.Config{
					Broker:     gw.Addr(),
					ClientID:   fmt.Sprintf("bench-gdev-%d", d),
					WindowSize: 64,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				clients[d] = c
				workflows[d] = c.NewWorkflow(fmt.Sprintf("wf-%d", d))
				if err := workflows[d].Begin(); err != nil {
					b.Fatal(err)
				}
			}
			attrs := provlight.Attrs(map[string]any{"epoch": int64(0), "loss": 0.5})
			baseline := len(mem.Records()) // workflow-begin frames
			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			for d := 0; d < devices; d++ {
				n := b.N / devices
				if d < b.N%devices {
					n++
				}
				if n == 0 {
					continue
				}
				wg.Add(1)
				go func(d, n int) {
					defer wg.Done()
					wf := workflows[d]
					for i := 0; i < n; i++ {
						task := wf.NewTask(fmt.Sprintf("t%d", i), "bench")
						if err := task.Begin(provlight.NewData(fmt.Sprintf("in%d", i), attrs)); err != nil {
							b.Errorf("device %d begin %d: %v", d, i, err)
							return
						}
						if err := task.End(provlight.NewData(fmt.Sprintf("out%d", i), attrs)); err != nil {
							b.Errorf("device %d end %d: %v", d, i, err)
							return
						}
					}
					if err := clients[d].Flush(); err != nil {
						b.Errorf("device %d flush: %v", d, err)
					}
				}(d, n)
			}
			wg.Wait()
			want := baseline + 2*b.N // begin + end record per task
			deadline := time.Now().Add(60*time.Second + time.Duration(b.N)*20*time.Millisecond)
			for len(mem.Records()) < want {
				if time.Now().After(deadline) {
					b.Fatalf("target has %d/%d records", len(mem.Records()), want)
				}
				time.Sleep(time.Millisecond)
			}
			tr.Drain()
			elapsed := time.Since(start)
			b.StopTimer()
			var frames uint64
			for _, c := range clients {
				frames += c.Stats().FramesPublished
			}
			b.ReportMetric(float64(frames)/elapsed.Seconds(), "frames/s")
		})
	}
}

// legacyDfAnalyzerTarget replicates the pre-batching DfAnalyzer target:
// every frame appends to the full record history, re-derives the dataflow
// spec from scratch (O(n^2) over the run), and ships each record with its
// own blocking POST /task. Kept here as the measured baseline for
// BenchmarkTranslatorPipeline.
type legacyDfAnalyzerTarget struct {
	client   *dfanalyzer.Client
	dataflow string

	mu   sync.Mutex
	seen []provlight.Record
	spec string
}

func (*legacyDfAnalyzerTarget) Name() string { return "dfanalyzer-legacy" }

func (d *legacyDfAnalyzerTarget) Deliver(records []provlight.Record) error {
	d.mu.Lock()
	d.seen = append(d.seen, records...)
	df := dfanalyzer.DataflowFromRecords(d.dataflow, d.seen)
	fp := legacyFingerprint(df)
	needRegister := fp != d.spec
	if needRegister {
		d.spec = fp
	}
	d.mu.Unlock()
	if needRegister {
		if err := d.client.RegisterDataflow(df); err != nil {
			return err
		}
	}
	for i := range records {
		msg, ok := dfanalyzer.RecordToTaskMsg(d.dataflow, &records[i])
		if !ok {
			continue
		}
		if err := d.client.SendTask(msg); err != nil {
			return err
		}
	}
	return nil
}

func legacyFingerprint(df *dfanalyzer.Dataflow) string {
	s := df.Tag
	for _, tr := range df.Transformations {
		s += "|" + tr.Tag
		for _, set := range append(append([]dfanalyzer.SetSchema{}, tr.Input...), tr.Output...) {
			s += ";" + set.Tag
			for _, a := range set.Attributes {
				s += "," + a.Name + ":" + string(a.Type)
			}
		}
	}
	return s
}

// BenchmarkSourceSelect measures the backend-agnostic read path: the same
// predicate + top-k query through the Source interface against the
// in-memory target's column-store view and against a local DfAnalyzer
// store, over 20k ingested records.
func BenchmarkSourceSelect(b *testing.B) {
	const tasks = 10_000
	records := make([]provdm.Record, 0, 2*tasks)
	base := time.Unix(1_700_000_000, 0)
	for i := 0; i < tasks; i++ {
		id := fmt.Sprintf("t%d", i)
		records = append(records, provdm.Record{
			Event: provdm.EventTaskBegin, WorkflowID: "w", TaskID: id,
			Transformation: "t", Status: provdm.StatusRunning,
			Data: []provdm.DataRef{{ID: "in-" + id, Attributes: []provdm.Attribute{
				{Name: "lr", Value: float64(i%10) / 10},
			}}},
			Time: base,
		})
		records = append(records, provdm.Record{
			Event: provdm.EventTaskEnd, WorkflowID: "w", TaskID: id,
			Transformation: "t", Status: provdm.StatusFinished,
			Data: []provdm.DataRef{{ID: "out-" + id, Attributes: []provdm.Attribute{
				{Name: "epoch", Value: float64(i)},
				{Name: "loss", Value: 1 / float64(i+1)},
				{Name: "accuracy", Value: float64(i%1000) / 1000},
			}}},
			Time: base.Add(time.Second),
		})
	}

	mem := provlight.NewMemoryTargetForDataflow("bench")
	if err := mem.Deliver(records); err != nil {
		b.Fatal(err)
	}
	store := dfanalyzer.NewStore()
	if err := store.RegisterDataflow(dfanalyzer.DataflowFromRecords("bench", records)); err != nil {
		b.Fatal(err)
	}
	for i := range records {
		if msg, ok := dfanalyzer.RecordToTaskMsg("bench", &records[i]); ok {
			if err := store.IngestTask(msg); err != nil {
				b.Fatal(err)
			}
		}
	}

	q := provlight.Query{
		Dataflow: "bench", Set: "t_output",
		Where:   []provlight.Pred{{Attr: "loss", Op: provlight.Lt, Value: 0.5}},
		OrderBy: "accuracy", Desc: true, Limit: 10,
	}
	ctx := context.Background()
	for name, src := range map[string]provlight.Source{"memory": mem, "store": store} {
		src := src
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rows, err := src.Select(ctx, q)
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != 10 {
					b.Fatalf("rows = %d, want 10", len(rows))
				}
			}
		})
	}
}
