// Benchmark harness for the paper's evaluation: one testing.B benchmark
// per table and figure (simulator-backed, reporting the headline metric of
// each as a custom unit), plus real-path benchmarks of the actual codecs,
// broker, and capture clients on localhost.
//
// Run with: go test -bench=. -benchmem
package provlight_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/provlight/provlight"
	"github.com/provlight/provlight/internal/device"
	"github.com/provlight/provlight/internal/dfanalyzer"
	"github.com/provlight/provlight/internal/experiment"
	"github.com/provlight/provlight/internal/netem"
	"github.com/provlight/provlight/internal/provlake"
	"github.com/provlight/provlight/internal/wire"
	"github.com/provlight/provlight/internal/workload"
)

// ---------------------------------------------------------------------------
// Paper tables and figures (simulation-backed; the custom metric is the
// paper's headline number for that artifact).
// ---------------------------------------------------------------------------

func reportOverhead(b *testing.B, name string, mean float64) {
	b.ReportMetric(mean*100, name+"_%overhead")
}

func BenchmarkTableII_BaselineOverheadEdge(b *testing.B) {
	var last experiment.TableResult
	for i := 0; i < b.N; i++ {
		last = experiment.TableII()
	}
	for _, c := range last.Cells {
		if c.Config.Workload.TaskDuration == 500*time.Millisecond && c.Config.Workload.AttributesPerTask == 100 {
			reportOverhead(b, string(c.Config.System), c.Overhead.Mean)
		}
	}
}

func BenchmarkTableIII_ProvLakeGrouping(b *testing.B) {
	var last experiment.TableResult
	for i := 0; i < b.N; i++ {
		last = experiment.TableIII()
	}
	for _, c := range last.Cells {
		if c.Config.Link.BandwidthBps == 25e3 && c.Config.Workload.TaskDuration == 500*time.Millisecond {
			reportOverhead(b, fmt.Sprintf("25Kbit_g%d", c.Config.GroupSize), c.Overhead.Mean)
		}
	}
}

func BenchmarkTableVII_ProvLightOverheadEdge(b *testing.B) {
	var last experiment.TableResult
	for i := 0; i < b.N; i++ {
		last = experiment.TableVII()
	}
	for _, c := range last.Cells {
		if c.Config.Workload.AttributesPerTask == 100 {
			reportOverhead(b, fmt.Sprintf("%.1fs", c.Config.Workload.TaskDuration.Seconds()), c.Overhead.Mean)
		}
	}
}

func BenchmarkTableVIII_ProvLightGrouping(b *testing.B) {
	var last experiment.TableResult
	for i := 0; i < b.N; i++ {
		last = experiment.TableVIII()
	}
	for _, c := range last.Cells {
		if c.Config.Link.BandwidthBps == 25e3 && c.Config.Workload.TaskDuration == 500*time.Millisecond {
			reportOverhead(b, fmt.Sprintf("25Kbit_g%d", c.Config.GroupSize), c.Overhead.Mean)
		}
	}
}

func BenchmarkTableIX_Scalability(b *testing.B) {
	var last experiment.TableResult
	for i := 0; i < b.N; i++ {
		last = experiment.TableIX()
	}
	for _, c := range last.Cells {
		reportOverhead(b, fmt.Sprintf("%ddevices", c.Config.Devices), c.Overhead.Mean)
	}
}

func BenchmarkTableX_CloudOverhead(b *testing.B) {
	var last experiment.TableResult
	for i := 0; i < b.N; i++ {
		last = experiment.TableX()
	}
	for _, c := range last.Cells {
		if c.Config.Workload.TaskDuration == 500*time.Millisecond {
			reportOverhead(b, string(c.Config.System), c.Overhead.Mean)
		}
	}
}

func figure6Cell(b *testing.B, sys experiment.System) experiment.Result {
	b.Helper()
	var r experiment.Result
	for i := 0; i < b.N; i++ {
		r = experiment.Run(experiment.RunConfig{
			System:      sys,
			Workload:    workload.Default,
			Device:      device.A8M3,
			Link:        netem.GigabitEdge,
			Repetitions: 10,
			Seed:        42,
		})
	}
	return r
}

func BenchmarkFigure6a_CPU(b *testing.B) {
	for _, sys := range experiment.AllSystems {
		sys := sys
		b.Run(string(sys), func(b *testing.B) {
			r := figure6Cell(b, sys)
			b.ReportMetric(r.CPUPercent, "cpu_%")
		})
	}
}

func BenchmarkFigure6b_Memory(b *testing.B) {
	for _, sys := range experiment.AllSystems {
		sys := sys
		b.Run(string(sys), func(b *testing.B) {
			r := figure6Cell(b, sys)
			b.ReportMetric(r.MemPercent, "mem_%")
		})
	}
}

func BenchmarkFigure6c_Network(b *testing.B) {
	for _, sys := range experiment.AllSystems {
		sys := sys
		b.Run(string(sys), func(b *testing.B) {
			r := figure6Cell(b, sys)
			b.ReportMetric(r.NetKBps, "KB/s")
		})
	}
}

func BenchmarkFigure6d_Power(b *testing.B) {
	for _, sys := range experiment.AllSystems {
		sys := sys
		b.Run(string(sys), func(b *testing.B) {
			r := figure6Cell(b, sys)
			b.ReportMetric(r.PowerW, "watts")
			b.ReportMetric(r.PowerOverheadPct, "power_%overhead")
		})
	}
}

func BenchmarkAblations_DesignChoices(b *testing.B) {
	var last experiment.TableResult
	for i := 0; i < b.N; i++ {
		last = experiment.Ablations()
	}
	for i, c := range last.Cells {
		reportOverhead(b, fmt.Sprintf("v%d", i), c.Overhead.Mean)
	}
}

// ---------------------------------------------------------------------------
// Real-path benchmarks: actual codecs, broker, and capture clients.
// ---------------------------------------------------------------------------

func BenchmarkWireEncode100Attrs(b *testing.B) {
	_, end := workload.Default.SampleTaskRecords("wf")
	enc := wire.Encoder{}
	b.ReportAllocs()
	var size int
	for i := 0; i < b.N; i++ {
		frame, err := enc.EncodeFrame(&end)
		if err != nil {
			b.Fatal(err)
		}
		size = len(frame)
	}
	b.ReportMetric(float64(size), "frame_bytes")
}

func BenchmarkWireDecode100Attrs(b *testing.B) {
	_, end := workload.Default.SampleTaskRecords("wf")
	frame, err := (&wire.Encoder{}).EncodeFrame(&end)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wire.DecodeFrame(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireGroupEncode50(b *testing.B) {
	recs := workload.Default.Records("wf", time.Unix(0, 0))
	enc := wire.Encoder{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		batch := make([]*provlight.Record, 50)
		for j := range batch {
			batch[j] = &recs[1+j]
		}
		if _, err := enc.EncodeFrame(batch...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProvLightCaptureRealPipeline measures end-to-end capture cost
// through the real client -> UDP broker -> translator path on localhost.
func BenchmarkProvLightCaptureRealPipeline(b *testing.B) {
	mem := provlight.NewMemoryTarget()
	server, err := provlight.StartServer(provlight.ServerConfig{
		Addr:    "127.0.0.1:0",
		Targets: []provlight.Target{mem},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer server.Close()
	client, err := provlight.NewClient(provlight.Config{
		Broker:   server.Addr(),
		ClientID: "bench-device",
	})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()

	wf := client.NewWorkflow("bench")
	if err := wf.Begin(); err != nil {
		b.Fatal(err)
	}
	attrs := provlight.Attrs(map[string]any{"in": make([]byte, 100)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		task := wf.NewTask(fmt.Sprintf("t%d", i), "bench")
		if err := task.Begin(provlight.NewData(fmt.Sprintf("in%d", i), attrs)); err != nil {
			b.Fatal(err)
		}
		if err := task.End(provlight.NewData(fmt.Sprintf("out%d", i), attrs)); err != nil {
			b.Fatal(err)
		}
	}
	if err := client.Flush(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	st := client.Stats()
	b.ReportMetric(float64(st.BytesPublished)/float64(b.N), "wire_bytes/task")
}

// BenchmarkDfAnalyzerCaptureRealHTTP measures the baseline's blocking
// HTTP request/response capture path on localhost.
func BenchmarkDfAnalyzerCaptureRealHTTP(b *testing.B) {
	srv := dfanalyzer.NewServer(nil)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client := dfanalyzer.NewClient("http://" + srv.Addr())
	df := &dfanalyzer.Dataflow{
		Tag: "bench",
		Transformations: []dfanalyzer.Transformation{{
			Tag: "t",
			Output: []dfanalyzer.SetSchema{{Tag: "t_output", Attributes: []dfanalyzer.Attribute{
				{Name: "v", Type: dfanalyzer.Numeric},
			}}},
		}},
	}
	if err := client.RegisterDataflow(df); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg := &dfanalyzer.TaskMsg{
			Dataflow: "bench", Transformation: "t", ID: fmt.Sprintf("task%d", i),
			Status: dfanalyzer.StatusFinished,
			Sets: []dfanalyzer.SetData{{Tag: "t_output",
				Elements: []dfanalyzer.Element{{float64(i)}}}},
		}
		if err := client.SendTask(msg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProvLakeCaptureRealHTTP measures the second baseline, with and
// without message grouping.
func BenchmarkProvLakeCaptureRealHTTP(b *testing.B) {
	for _, group := range []int{0, 10} {
		group := group
		b.Run(fmt.Sprintf("group%d", group), func(b *testing.B) {
			srv := provlake.NewServer(nil)
			if err := srv.Start("127.0.0.1:0"); err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			var opts []provlake.Option
			if group > 0 {
				opts = append(opts, provlake.WithGroupSize(group))
			}
			client := provlake.NewClient("http://"+srv.Addr(), opts...)
			recs := workload.Default.Records("wf", time.Now())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := client.Capture(&recs[1+i%(len(recs)-2)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := client.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkSimulatedEdgeRun measures the simulator itself: one full
// Table I cell (10 repetitions x 100 tasks) per iteration.
func BenchmarkSimulatedEdgeRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.Run(experiment.RunConfig{
			System:      experiment.ProvLight,
			Workload:    workload.Default,
			Device:      device.A8M3,
			Link:        netem.GigabitEdge,
			Repetitions: 10,
			Seed:        1,
		})
	}
}
