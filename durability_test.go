// Kill-and-restart end-to-end tests for the durability subsystem: a
// spooling capture client over a lossy netem link, a translator backed by
// a WAL+snapshot store, and crashes (abrupt teardown, exactly as a
// SIGKILL leaves the persistent state) injected mid-stream on both sides.
// The invariant under test is exactly-once: after everything restarts and
// drains, the store holds every record exactly once — zero lost, zero
// duplicated.
package provlight_test

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/provlight/provlight"
	"github.com/provlight/provlight/internal/broker"
	"github.com/provlight/provlight/internal/dfanalyzer"
	"github.com/provlight/provlight/internal/netem"
	"github.com/provlight/provlight/internal/translate"
	"github.com/provlight/provlight/internal/wal"
)

// lossyDial returns a DialConn producing 25%-loss, 10%-duplication netem
// links (deterministic per-session seeds).
func lossyDial(t testing.TB) func() (net.PacketConn, error) {
	t.Helper()
	var session int64
	return func() (net.PacketConn, error) {
		raw, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		session++
		return netem.WrapPacketConn(raw, netem.Profile{
			LossRate: 0.25,
			DupRate:  0.10,
			Seed:     1000 + session,
		}), nil
	}
}

func newSpoolingClient(t testing.TB, brokerAddr, spoolDir string) *provlight.Client {
	t.Helper()
	client, err := provlight.NewClient(context.Background(), provlight.Config{
		Broker:            brokerAddr,
		ClientID:          "edge-1",
		SpoolDir:          spoolDir,
		DialConn:          lossyDial(t),
		RetryInterval:     100 * time.Millisecond,
		MaxRetries:        10,
		AckWindow:         32,
		RedeliverAfter:    500 * time.Millisecond,
		ReconnectMinDelay: 50 * time.Millisecond,
		ReconnectMaxDelay: 400 * time.Millisecond,
		OnError:           func(err error) { t.Logf("client: %v", err) },
	})
	if err != nil {
		t.Fatal(err)
	}
	return client
}

func startDurableTranslator(t testing.TB, brokerAddr, storeDir, clientID string) (*translate.Translator, *dfanalyzer.Store) {
	t.Helper()
	store, err := dfanalyzer.OpenStore(dfanalyzer.StoreOptions{
		Dir:           storeDir,
		Sync:          wal.SyncInterval,
		SnapshotEvery: 16, // exercise snapshots during the test
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	tr, err := translate.New(ctx, translate.Config{
		Broker:        brokerAddr,
		ClientID:      clientID,
		Targets:       []translate.Target{translate.NewStoreTarget(store, "provlight")},
		RetryInterval: 100 * time.Millisecond,
		MaxRetries:    10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr, store
}

func captureRange(t testing.TB, client *provlight.Client, from, to int) {
	t.Helper()
	wf := client.NewWorkflow("wf")
	for i := from; i < to; i++ {
		task := wf.NewTask(fmt.Sprintf("t%04d", i), "train")
		if err := task.Begin(provlight.NewData(fmt.Sprintf("in%d", i),
			provlight.Attrs(map[string]any{"lr": 0.01}))); err != nil {
			t.Fatalf("begin %d: %v", i, err)
		}
		if err := task.End(provlight.NewData(fmt.Sprintf("out%d", i),
			provlight.Attrs(map[string]any{"accuracy": float64(i)}))); err != nil {
			t.Fatalf("end %d: %v", i, err)
		}
	}
}

// assertExactlyOnce checks the store holds records [0, n) exactly once.
func assertExactlyOnce(t testing.TB, store *dfanalyzer.Store, n int) {
	t.Helper()
	if got := store.TaskCount("provlight"); got != n {
		t.Fatalf("task catalog has %d entries, want exactly %d", got, n)
	}
	for _, set := range []string{"train_input", "train_output"} {
		rows, err := store.Select(context.Background(), dfanalyzer.Query{Dataflow: "provlight", Set: set})
		if err != nil {
			t.Fatalf("select %s: %v", set, err)
		}
		if len(rows) != n {
			t.Fatalf("%s has %d rows, want exactly %d (lost or duplicated)", set, len(rows), n)
		}
		seen := map[any]bool{}
		for _, row := range rows {
			id := row["task_id"]
			if seen[id] {
				t.Fatalf("%s: duplicated task %v", set, id)
			}
			seen[id] = true
		}
	}
}

// TestKillRestartExactlyOnce is the headline crash test: over a 25%-loss
// link, the translator (with its durable store) is killed mid-stream,
// then the client is killed too; both restart and the drained pipeline
// must hold every record exactly once.
func TestKillRestartExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("crash e2e in -short mode")
	}
	spoolDir, storeDir := t.TempDir(), t.TempDir()
	b, err := broker.New(broker.Config{Addr: "127.0.0.1:0", RetryInterval: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const n = 36
	tr1, store1 := startDurableTranslator(t, b.Addr(), storeDir, "translator-a")
	client1 := newSpoolingClient(t, b.Addr(), spoolDir)

	// Phase 1: capture a third, let some of it flow.
	captureRange(t, client1, 0, n/3)
	time.Sleep(400 * time.Millisecond)

	// SIGKILL the translator mid-stream: frames already QoS2-acked by the
	// broker but not yet durably applied die with it; unacked spool
	// frames must cover them.
	tr1.Abort()
	if err := store1.Close(); err != nil { // crash-equivalent: no snapshot, WAL only
		t.Fatal(err)
	}

	// Phase 2: the client keeps capturing into the dead air, then crashes
	// too (no flush, no ack-mark persistence).
	captureRange(t, client1, n/3, 2*n/3)
	time.Sleep(200 * time.Millisecond)
	client1.Abort()

	// Phase 3: both sides restart from their directories.
	tr2, store2 := startDurableTranslator(t, b.Addr(), storeDir, "translator-b")
	client2 := newSpoolingClient(t, b.Addr(), spoolDir)
	captureRange(t, client2, 2*n/3, n)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := client2.Shutdown(ctx); err != nil {
		t.Fatalf("drain after restart: %v (stats %+v)", err, client2.StatsSnapshot())
	}
	tr2.Drain()
	st := client2.StatsSnapshot()
	if st.SpoolPending != 0 {
		t.Fatalf("spool still pending %d frames", st.SpoolPending)
	}
	assertExactlyOnce(t, store2, n)

	// And the store state itself survives another restart.
	if err := tr2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := store2.Close(); err != nil {
		t.Fatal(err)
	}
	store3, err := dfanalyzer.OpenStore(dfanalyzer.StoreOptions{Dir: storeDir})
	if err != nil {
		t.Fatal(err)
	}
	defer store3.Close()
	assertExactlyOnce(t, store3, n)
	t.Logf("exactly-once after double crash: %d tasks; client stats %+v", n, st)
}

// TestServerCrashRecoversSnapshotAndTail kills the store-side process
// between snapshots and replays the tail: the acceptance criterion's
// "SIGKILL of dfanalyzer-server at arbitrary points" half, driven
// through the HTTP server.
func TestServerCrashRecoversSnapshotAndTail(t *testing.T) {
	dir := t.TempDir()
	store, err := dfanalyzer.OpenStore(dfanalyzer.StoreOptions{Dir: dir, SnapshotEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := dfanalyzer.NewServer(store)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	cl := dfanalyzer.NewClient("http://" + srv.Addr())
	spec := &dfanalyzer.Dataflow{Tag: "provlight", Transformations: []dfanalyzer.Transformation{{
		Tag:    "train",
		Output: []dfanalyzer.SetSchema{{Tag: "train_output", Attributes: []dfanalyzer.Attribute{{Name: "accuracy", Type: dfanalyzer.Numeric}}}},
	}}}
	if err := cl.RegisterDataflow(spec); err != nil {
		t.Fatal(err)
	}
	const n = 21
	for i := 0; i < n; i++ {
		frame := []dfanalyzer.FrameMsg{{
			Origin: "provlight/edge-1/records", Seq: uint64(i + 1),
			Tasks: []*dfanalyzer.TaskMsg{{
				Dataflow: "provlight", Transformation: "train", ID: fmt.Sprintf("t%d", i),
				Status: dfanalyzer.StatusFinished,
				Sets:   []dfanalyzer.SetData{{Tag: "train_output", Elements: []dfanalyzer.Element{{float64(i)}}}},
			}},
		}}
		if err := cl.SendFrames(frame); err != nil {
			t.Fatalf("send frame %d: %v", i, err)
		}
	}
	// SIGKILL the server: no final snapshot, just what WAL + the periodic
	// snapshots persisted.
	srv.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := dfanalyzer.OpenStore(dfanalyzer.StoreOptions{Dir: dir, SnapshotEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if got := store2.TaskCount("provlight"); got != n {
		t.Fatalf("recovered %d tasks, want %d", got, n)
	}
	// Redelivering every frame against the recovered server must be a
	// complete no-op.
	srv2 := dfanalyzer.NewServer(store2)
	if err := srv2.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	cl2 := dfanalyzer.NewClient("http://" + srv2.Addr())
	for i := 0; i < n; i++ {
		frame := []dfanalyzer.FrameMsg{{
			Origin: "provlight/edge-1/records", Seq: uint64(i + 1),
			Tasks: []*dfanalyzer.TaskMsg{{
				Dataflow: "provlight", Transformation: "train", ID: fmt.Sprintf("t%d", i),
				Status: dfanalyzer.StatusFinished,
				Sets:   []dfanalyzer.SetData{{Tag: "train_output", Elements: []dfanalyzer.Element{{float64(i)}}}},
			}},
		}}
		if err := cl2.SendFrames(frame); err != nil {
			t.Fatalf("redeliver frame %d: %v", i, err)
		}
	}
	rows, err := store2.Select(context.Background(), dfanalyzer.Query{Dataflow: "provlight", Set: "train_output"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != n {
		t.Fatalf("after full redelivery: %d rows, want exactly %d", len(rows), n)
	}
}
