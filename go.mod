module github.com/provlight/provlight

go 1.22
